"""RL009: docstring discipline on the serving surface.

The serving layer is the first operator-facing boundary of this codebase:
its contracts (protocol error codes, batching compatibility, admission
semantics, accounting) live in prose as much as in code, and DESIGN.md §11
is their canonical home.  RL009 keeps that prose from rotting, in two steps:

* every *public* module, class and function under ``repro/serving/`` and in
  ``repro/session.py`` must carry a docstring (names with a leading
  underscore, dunders other than ``__init__`` modules, and nested defs are
  exempt), and
* the session's query surface (``apsp`` / ``sssp`` / ``sssp_batch`` /
  ``shortest_paths`` / ``diameter`` / ``route_tokens``) and every public
  serving *class* must anchor themselves with a literal ``DESIGN.md §``
  cross-reference, so the docs-consistency check
  (tests/test_docs.py) can verify the referenced section exists.

A missing docstring on internal helpers elsewhere in the tree is a style
question; on the serving surface it is an operability bug, which is why the
rule is scoped rather than global.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from repro.analysis.lint.diagnostics import Diagnostic
from repro.analysis.lint.framework import Checker, SourceFile

#: Files the rule applies to (path suffixes, like RL004's allow-list).
SCOPED_SUFFIXES = ("repro/serving/", "repro/session.py")

#: Methods of the public query surface that must cite their DESIGN.md home.
QUERY_SURFACE = frozenset(
    {"apsp", "sssp", "sssp_batch", "shortest_paths", "diameter", "route_tokens"}
)


def _in_scope(source: SourceFile) -> bool:
    normalized = str(source.path).replace("\\", "/")
    return any(suffix in normalized for suffix in SCOPED_SUFFIXES)


class DocstringDisciplineChecker(Checker):
    code = "RL009"
    name = "docstring-discipline"
    description = "public serving/session surface lacking docstrings or DESIGN.md refs"

    def check(self, source: SourceFile) -> Iterable[Diagnostic]:
        if not _in_scope(source):
            return
        if ast.get_docstring(source.tree) is None:
            yield self.diagnostic(
                source,
                source.tree.body[0] if source.tree.body else source.tree,
                "module on the serving surface has no docstring",
            )
        yield from self._check_body(source, source.tree.body, class_name=None)

    def _check_body(
        self, source: SourceFile, body: list[ast.stmt], class_name: str | None
    ) -> Iterable[Diagnostic]:
        for node in body:
            if isinstance(node, ast.ClassDef):
                if node.name.startswith("_"):
                    continue
                docstring = ast.get_docstring(node)
                if docstring is None:
                    yield self.diagnostic(
                        source, node, f"public class {node.name!r} has no docstring"
                    )
                elif "repro/serving/" in str(source.path).replace(
                    "\\", "/"
                ) and "DESIGN.md §" not in docstring:
                    yield self.diagnostic(
                        source,
                        node,
                        f"public serving class {node.name!r} must cross-reference "
                        "its DESIGN.md section (e.g. 'DESIGN.md §11')",
                    )
                yield from self._check_body(source, node.body, class_name=node.name)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if node.name.startswith("_"):
                    continue
                docstring = ast.get_docstring(node)
                if docstring is None:
                    kind = "method" if class_name else "function"
                    yield self.diagnostic(
                        source, node, f"public {kind} {node.name!r} has no docstring"
                    )
                elif node.name in QUERY_SURFACE and class_name == "HybridSession":
                    if "DESIGN.md §" not in docstring:
                        yield self.diagnostic(
                            source,
                            node,
                            f"query-surface method {node.name!r} must cross-reference "
                            "its DESIGN.md section (e.g. 'DESIGN.md §6')",
                        )
