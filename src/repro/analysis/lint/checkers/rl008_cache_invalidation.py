"""RL008: writes to cache-backed objects must bump a version or invalidate.

``WeightedGraph``, ``SkeletonContext`` and ``HybridSession`` all carry
derived state that is expensive to rebuild (frozen CSR adjacencies,
skeleton distance tables, per-session router caches) and all use the same
discipline to keep it honest: mutators bump a version counter (or call an
invalidation hook) and readers compare versions before trusting a cache.
The upcoming delta-repair work makes those caches long-lived, so a single
mutation path that forgets the bump becomes a silent stale-read bug that
no per-file rule can see -- the write is in one module, the cache in
another.

This rule polices the discipline statically.  For every class in the
:data:`CACHE_CLASSES` registry, each instance-attribute **assignment**
(``self.x = ...`` / ``obj.x += ...``; keyed cache fills like
``self._table[k] = v`` are version-checked at the container level and
exempt by design) must satisfy one of:

* the method also bumps the class's version attribute or calls one of its
  registered invalidation hooks;
* the write *is* the version bump, or targets a **cache slot** -- an
  attribute initialized to ``None`` (in ``__init__``, as a dataclass
  default, or class-level) and filled lazily;
* the write sits inside a **lazy-fill block** ``if self.<slot> is None:``
  (counters charged while materializing a cache do not invalidate it);
* the enclosing method is ``__init__``/``__post_init__`` or a registered
  hook itself.

Writes *through variables* statically typed as a registered class
(``graph = WeightedGraph(...); graph.x = ...`` or annotated parameters)
are held to the same standard, so external code cannot quietly poke a
cached object either.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Sequence

from repro.analysis.lint.dataflow import FunctionFacts, function_facts
from repro.analysis.lint.diagnostics import Diagnostic
from repro.analysis.lint.framework import Checker, SourceFile
from repro.analysis.lint.symbols import ClassInfo, ProjectSymbols, project_symbols

#: class name -> (version attribute, invalidation hook method names).
#: Literal registry, mirroring RL003's PLANE_KERNELS: reviewable in one
#: place, extended in the same commit that introduces a new cached class.
CACHE_CLASSES = {
    "WeightedGraph": ("_version", ()),
    "SkeletonContext": ("graph_version", ()),
    "HybridSession": ("_graph_version", ("invalidate", "_check_version")),
    "HybridNetwork": ("_outage_version", ()),
}

#: Methods exempt per se: constructors and the hooks themselves.
CONSTRUCTOR_METHODS = frozenset({"__init__", "__post_init__", "__new__"})


class CacheInvalidationChecker(Checker):
    code = "RL008"
    name = "cache-invalidation"
    description = (
        "attribute writes on cache-backed classes must bump the version "
        "attribute or call a registered invalidation hook"
    )

    def check_project(self, sources: Sequence[SourceFile]) -> Iterable[Diagnostic]:
        project = project_symbols(sources)
        registered: dict[str, tuple[ClassInfo, str, tuple]] = {}
        for name in sorted(CACHE_CLASSES):
            version_attr, hooks = CACHE_CLASSES[name]
            for info in project.classes_by_name.get(name, ()):
                registered[name] = (info, version_attr, tuple(hooks))
                break  # Deterministic: first definition wins.
        if not registered:
            return
        slots = {
            name: _cache_slots(info) for name, (info, _, _) in sorted(registered.items())
        }
        # Pass 1: the registered classes' own methods.
        for name in sorted(registered):
            info, version_attr, hooks = registered[name]
            for method_name in sorted(info.methods):
                if method_name in CONSTRUCTOR_METHODS or method_name in hooks:
                    continue
                method = info.methods[method_name]
                facts = function_facts(project, method)
                yield from self._check_writes(
                    facts,
                    base="self",
                    class_name=name,
                    version_attr=version_attr,
                    hooks=hooks,
                    slots=slots[name],
                )
        # Pass 2: external writes through statically-typed variables.
        for module in project.modules:
            for function in module.all_functions:
                if function.class_name in registered:
                    continue  # Own methods already held to the standard.
                facts = function_facts(project, function)
                bases = sorted(
                    {
                        write.base
                        for write in facts.attribute_writes
                        if facts.local_types.get(write.base) in registered
                    }
                )
                for base in bases:
                    class_name = facts.local_types[base]
                    _, version_attr, hooks = registered[class_name]
                    yield from self._check_writes(
                        facts,
                        base=base,
                        class_name=class_name,
                        version_attr=version_attr,
                        hooks=hooks,
                        slots=slots[class_name],
                    )

    def _check_writes(
        self,
        facts: FunctionFacts,
        base: str,
        class_name: str,
        version_attr: str,
        hooks: tuple,
        slots: frozenset,
    ) -> Iterable[Diagnostic]:
        writes = [write for write in facts.attribute_writes if write.base == base]
        if not writes:
            return
        bumps_version = any(write.attr == version_attr for write in writes)
        calls_hook = bool(set(facts.method_calls.get(base, ())) & set(hooks))
        if bumps_version or calls_hook:
            return
        lazy_nodes = _lazy_fill_nodes(facts.function.node, base, slots)
        for write in writes:
            if write.attr == version_attr or write.attr in slots:
                continue
            if id(write.node) in lazy_nodes:
                continue
            yield self.diagnostic(
                facts.function.source,
                write.node,
                f"'{facts.function.name}' writes '{base}.{write.attr}' on "
                f"cache-backed {class_name} without bumping '{version_attr}' "
                f"or calling an invalidation hook "
                f"({', '.join(hooks) if hooks else 'none registered'}); "
                f"derived caches go stale",
            )


def _cache_slots(info: ClassInfo) -> frozenset:
    """Attributes of a class initialized to ``None`` (lazy cache slots)."""
    slots = set()
    for attr_name in sorted(info.class_assigns):
        value = info.class_assigns[attr_name]
        if _is_none_default(value):
            slots.add(attr_name)
    for ctor_name in sorted(CONSTRUCTOR_METHODS):
        ctor = info.methods.get(ctor_name)
        if ctor is None:
            continue
        for node in ast.walk(ctor.node):
            if isinstance(node, (ast.Assign, ast.AnnAssign)):
                targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                for target in targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                        and _is_none_default(node.value)
                    ):
                        slots.add(target.attr)
    return frozenset(slots)


def _is_none_default(value: ast.expr | None) -> bool:
    if value is None:
        return False
    if isinstance(value, ast.Constant) and value.value is None:
        return True
    if isinstance(value, ast.Call):  # dataclasses.field(default=None)
        func = value.func
        leaf = func.attr if isinstance(func, ast.Attribute) else getattr(func, "id", "")
        if leaf == "field":
            for keyword in value.keywords:
                if (
                    keyword.arg == "default"
                    and isinstance(keyword.value, ast.Constant)
                    and keyword.value.value is None
                ):
                    return True
    return False


def _lazy_fill_nodes(function_node, base: str, slots: frozenset) -> set:
    """ids of statements inside ``if <base>.<slot> is None:`` bodies."""
    lazy: set = set()
    for node in ast.walk(function_node):
        if not isinstance(node, ast.If):
            continue
        test = node.test
        if not (
            isinstance(test, ast.Compare)
            and len(test.ops) == 1
            and isinstance(test.ops[0], ast.Is)
            and isinstance(test.comparators[0], ast.Constant)
            and test.comparators[0].value is None
            and isinstance(test.left, ast.Attribute)
            and isinstance(test.left.value, ast.Name)
            and test.left.value.id == base
            and test.left.attr in slots
        ):
            continue
        for child in node.body:
            for descendant in ast.walk(child):
                lazy.add(id(descendant))
    return lazy
