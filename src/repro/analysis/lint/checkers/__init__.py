"""The project-specific invariant checkers (RL001-RL009)."""

from __future__ import annotations

from repro.analysis.lint.checkers.rl001_determinism import DeterminismChecker
from repro.analysis.lint.checkers.rl002_ordering import OrderingChecker
from repro.analysis.lint.checkers.rl003_parity import PlaneParityChecker
from repro.analysis.lint.checkers.rl004_metrics import MetricsAccountingChecker
from repro.analysis.lint.checkers.rl005_fork_labels import ForkLabelChecker
from repro.analysis.lint.checkers.rl006_fork_safety import ForkSafetyChecker
from repro.analysis.lint.checkers.rl007_njit_subset import NjitSubsetChecker
from repro.analysis.lint.checkers.rl008_cache_invalidation import CacheInvalidationChecker
from repro.analysis.lint.checkers.rl009_docstrings import DocstringDisciplineChecker


def default_checkers() -> tuple:
    """Fresh instances of every registered checker, in code order."""
    return (
        DeterminismChecker(),
        OrderingChecker(),
        PlaneParityChecker(),
        MetricsAccountingChecker(),
        ForkLabelChecker(),
        ForkSafetyChecker(),
        NjitSubsetChecker(),
        CacheInvalidationChecker(),
        DocstringDisciplineChecker(),
    )


__all__ = [
    "CacheInvalidationChecker",
    "DeterminismChecker",
    "DocstringDisciplineChecker",
    "ForkLabelChecker",
    "ForkSafetyChecker",
    "MetricsAccountingChecker",
    "NjitSubsetChecker",
    "OrderingChecker",
    "PlaneParityChecker",
    "default_checkers",
]
