"""The project-specific invariant checkers (RL001-RL005)."""

from __future__ import annotations

from repro.analysis.lint.checkers.rl001_determinism import DeterminismChecker
from repro.analysis.lint.checkers.rl002_ordering import OrderingChecker
from repro.analysis.lint.checkers.rl003_parity import PlaneParityChecker
from repro.analysis.lint.checkers.rl004_metrics import MetricsAccountingChecker
from repro.analysis.lint.checkers.rl005_fork_labels import ForkLabelChecker


def default_checkers() -> tuple:
    """Fresh instances of every registered checker, in code order."""
    return (
        DeterminismChecker(),
        OrderingChecker(),
        PlaneParityChecker(),
        MetricsAccountingChecker(),
        ForkLabelChecker(),
    )


__all__ = [
    "DeterminismChecker",
    "ForkLabelChecker",
    "MetricsAccountingChecker",
    "OrderingChecker",
    "PlaneParityChecker",
    "default_checkers",
]
