"""RL004: metrics-accounting discipline.

``RoundMetrics`` counters are the *results* of this reproduction -- every
theorem check and every regression gate reads them -- and their integrity
rests on one rule: all mutation flows through the accounting layer
(``charge_local`` / ``charge_global`` / ``record_global_traffic`` / ...), so
that scoped observers, ambient observers, and per-phase breakdowns see every
charge exactly once.  A direct field write (``metrics.global_rounds += 2``)
bypasses the scope mirroring: the top-level totals move while every open
scope silently misses the charge -- the worst kind of accounting bug, because
nothing crashes.

RL004 flags any assignment or augmented assignment to an attribute named
like a ``RoundMetrics`` counter field outside the accounting layer itself:
``hybrid/metrics.py`` (where the mutation methods live) and the two message
planes (``hybrid/network.py``, ``hybrid/compiled.py``), which are the
engine-side owners of round/traffic accounting.  Subscript writes through
the ``phases`` / ``cut_bits`` mapping fields are flagged the same way.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from repro.analysis.lint.diagnostics import Diagnostic
from repro.analysis.lint.framework import Checker, SourceFile

#: Scalar counter fields of RoundMetrics (and PhaseBreakdown's two).
COUNTER_FIELDS = frozenset(
    {
        "local_rounds",
        "global_rounds",
        "global_messages",
        "global_bits",
        "max_sent_per_round",
        "max_received_per_round",
        "receive_cap_violations",
        "global_dropped",
        "global_retried",
    }
)

#: Mapping fields whose entries may only be written by the accounting layer.
MAPPING_FIELDS = frozenset({"phases", "cut_bits"})

#: The accounting layer: the only files allowed to mutate counter fields.
ALLOWED_SUFFIXES = (
    "repro/hybrid/metrics.py",
    "repro/hybrid/network.py",
    "repro/hybrid/compiled.py",
)


class MetricsAccountingChecker(Checker):
    code = "RL004"
    name = "metrics-accounting"
    description = "RoundMetrics counters mutated outside the accounting layer"

    def check(self, source: SourceFile) -> Iterable[Diagnostic]:
        if any(source.suffix_matches(suffix) for suffix in ALLOWED_SUFFIXES):
            return
        for node in ast.walk(source.tree):
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                for target in targets:
                    diagnostic = self._check_target(source, target)
                    if diagnostic is not None:
                        yield diagnostic

    def _check_target(self, source: SourceFile, target: ast.AST) -> Diagnostic | None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                diagnostic = self._check_target(source, element)
                if diagnostic is not None:
                    return diagnostic
            return None
        if isinstance(target, ast.Attribute) and target.attr in COUNTER_FIELDS:
            return self.diagnostic(
                source,
                target,
                f"direct write to RoundMetrics field {target.attr!r}; route the "
                "charge through the accounting layer (charge_local/charge_global/"
                "record_global_traffic/merge) so scoped observers see it",
            )
        if (
            isinstance(target, ast.Subscript)
            and isinstance(target.value, ast.Attribute)
            and target.value.attr in MAPPING_FIELDS
        ):
            return self.diagnostic(
                source,
                target,
                f"direct write into RoundMetrics.{target.value.attr}; phase and "
                "cut-bit entries are owned by the accounting layer",
            )
        return None
