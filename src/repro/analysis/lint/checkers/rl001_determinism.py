"""RL001: nondeterminism sources.

Every simulation result in this repository must be a pure function of the
configured seeds -- that is what makes ``--jobs N`` bit-identical to serial
runs, lets the artifact store content-address shards, and keeps the
differential-testing oracles meaningful.  RL001 flags the library calls that
smuggle ambient entropy or wall-clock state into that world:

* the stateful module-level ``random.*`` API (``random.random``,
  ``random.shuffle``, ...), unseeded ``random.Random()`` and
  ``random.SystemRandom`` -- seeded construction ``random.Random(seed)`` is
  the sanctioned primitive and stays allowed;
* the stateful global ``numpy.random.*`` API and unseeded
  ``numpy.random.default_rng()`` -- explicit ``SeedSequence`` / seeded
  generators remain allowed;
* ``os.urandom``, the ``secrets`` module, and ``uuid.uuid4``;
* wall-clock reads (``time.time``, ``time.perf_counter``,
  ``time.monotonic``, ``datetime.now`` ...) outside benchmark files --
  timing *measurement* is legitimate at reporting boundaries, which carry
  inline waivers, and in ``benchmarks/`` / ``bench_*.py`` files, which are
  exempt; and
* ``id()``-keyed ordering or lookup (sort keys, subscript keys, dict-literal
  keys): CPython object addresses vary run to run, so any ordering derived
  from them is nondeterministic even under fixed seeds.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Iterator

from repro.analysis.lint.diagnostics import Diagnostic
from repro.analysis.lint.framework import Checker, SourceFile

#: Stateful module-level ``random`` functions (share one hidden global RNG).
RANDOM_STATEFUL = frozenset(
    {
        "random",
        "randint",
        "randrange",
        "choice",
        "choices",
        "shuffle",
        "sample",
        "uniform",
        "triangular",
        "betavariate",
        "expovariate",
        "gammavariate",
        "gauss",
        "lognormvariate",
        "normalvariate",
        "vonmisesvariate",
        "paretovariate",
        "weibullvariate",
        "seed",
        "getstate",
        "setstate",
        "getrandbits",
        "randbytes",
    }
)

#: Stateful module-level ``numpy.random`` functions (hidden global BitGenerator).
NP_RANDOM_STATEFUL = frozenset(
    {
        "seed",
        "random",
        "rand",
        "randn",
        "randint",
        "random_sample",
        "ranf",
        "sample",
        "choice",
        "shuffle",
        "permutation",
        "uniform",
        "normal",
        "standard_normal",
        "bytes",
        "get_state",
        "set_state",
        "exponential",
        "poisson",
        "binomial",
        "geometric",
        "random_integers",
    }
)

#: Wall-clock reads (flagged outside benchmark files).
CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.clock_gettime",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.date.today",
    }
)

#: Calls whose result order already ignores input order (safe consumers).
ORDER_CALLS = frozenset({"sorted", "min", "max"})


def module_aliases(tree: ast.Module) -> dict[str, str]:
    """Map local names to the canonical dotted module/function they denote."""
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for name in node.names:
                aliases[name.asname or name.name.split(".")[0]] = (
                    name.name if name.asname else name.name.split(".")[0]
                )
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for name in node.names:
                aliases[name.asname or name.name] = f"{node.module}.{name.name}"
    return aliases


def dotted_name(node: ast.AST, aliases: dict[str, str]) -> str | None:
    """Resolve an attribute chain to its canonical dotted path, if static."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    root = aliases.get(node.id, node.id)
    parts.append(root)
    return ".".join(reversed(parts))


def is_benchmark_file(source: SourceFile) -> bool:
    normalized = source.path.replace("\\", "/")
    return "benchmarks/" in normalized or normalized.rsplit("/", 1)[-1].startswith("bench_")


class DeterminismChecker(Checker):
    code = "RL001"
    name = "nondeterminism-sources"
    description = "ambient entropy, wall clocks, and id()-keyed ordering in simulation code"

    def check(self, source: SourceFile) -> Iterable[Diagnostic]:
        aliases = module_aliases(source.tree)
        benchmark = is_benchmark_file(source)
        for node in ast.walk(source.tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(source, node, aliases, benchmark)
                yield from self._check_id_ordering(source, node)
            elif isinstance(node, ast.Subscript):
                yield from self._check_id_subscript(source, node)
            elif isinstance(node, ast.Dict):
                yield from self._check_id_dict_keys(source, node)

    # ------------------------------------------------------------- entropy
    def _check_call(
        self,
        source: SourceFile,
        node: ast.Call,
        aliases: dict[str, str],
        benchmark: bool,
    ) -> Iterator[Diagnostic]:
        name = dotted_name(node.func, aliases)
        if name is None:
            return
        if name == "os.urandom" or name == "uuid.uuid4" or name.startswith("secrets."):
            yield self.diagnostic(
                source, node, f"{name} draws ambient entropy; thread a seeded RandomSource"
            )
        elif name.startswith("random."):
            tail = name.split(".", 1)[1]
            if tail in RANDOM_STATEFUL:
                yield self.diagnostic(
                    source,
                    node,
                    f"stateful global random.{tail}(); use a seeded RandomSource "
                    "(repro.util.rand) so results replay from the configured seed",
                )
            elif tail == "SystemRandom":
                yield self.diagnostic(
                    source, node, "random.SystemRandom draws OS entropy; seed explicitly"
                )
            elif tail == "Random" and not node.args and not node.keywords:
                yield self.diagnostic(
                    source, node, "unseeded random.Random(); pass an explicit seed"
                )
        elif name.startswith("numpy.random.") or name.startswith("np.random."):
            tail = name.rsplit(".", 1)[1]
            if tail in NP_RANDOM_STATEFUL:
                yield self.diagnostic(
                    source,
                    node,
                    f"stateful global numpy.random.{tail}(); use numpy.random.SeedSequence "
                    "/ a seeded Generator instead",
                )
            elif tail == "default_rng" and not node.args and not node.keywords:
                yield self.diagnostic(
                    source, node, "unseeded numpy.random.default_rng(); pass an explicit seed"
                )
        elif name in CLOCK_CALLS and not benchmark:
            yield self.diagnostic(
                source,
                node,
                f"wall-clock read {name}() in simulation code; clocks belong in "
                "benchmarks or behind a reviewed waiver at a reporting boundary",
            )

    # ------------------------------------------------------- id() ordering
    @staticmethod
    def _contains_id_call(node: ast.AST) -> ast.Call | None:
        for child in ast.walk(node):
            if (
                isinstance(child, ast.Call)
                and isinstance(child.func, ast.Name)
                and child.func.id == "id"
            ):
                return child
        return None

    def _check_id_ordering(self, source: SourceFile, node: ast.Call) -> Iterator[Diagnostic]:
        func = node.func
        is_order_call = isinstance(func, ast.Name) and func.id in ORDER_CALLS
        is_sort_method = isinstance(func, ast.Attribute) and func.attr == "sort"
        if not (is_order_call or is_sort_method):
            return
        for keyword in node.keywords:
            if keyword.arg == "key":
                offender = None
                if isinstance(keyword.value, ast.Name) and keyword.value.id == "id":
                    offender = keyword.value
                else:
                    offender = self._contains_id_call(keyword.value)
                if offender is not None:
                    yield self.diagnostic(
                        source,
                        node,
                        "id()-keyed ordering: object addresses vary per process, "
                        "so this order is not reproducible",
                    )
                return

    def _check_id_subscript(self, source: SourceFile, node: ast.Subscript) -> Iterator[Diagnostic]:
        offender = self._contains_id_call(node.slice)
        if offender is not None:
            yield self.diagnostic(
                source,
                offender,
                "id()-keyed lookup: keying containers by object address is "
                "address-dependent; key by value or index instead",
            )

    def _check_id_dict_keys(self, source: SourceFile, node: ast.Dict) -> Iterator[Diagnostic]:
        for key in node.keys:
            if key is None:
                continue
            offender = self._contains_id_call(key)
            if offender is not None:
                yield self.diagnostic(
                    source,
                    offender,
                    "id()-keyed dict literal: object addresses vary per process; "
                    "key by value or index instead",
                )
