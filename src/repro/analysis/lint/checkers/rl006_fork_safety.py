"""RL006: module-level mutable state reachable from multiprocessing workers.

``ExperimentEngine`` fans shards out to worker processes (fork *or* spawn,
DESIGN.md §7).  Any module-level mutable binding -- a dict/list/set cache,
a counter, a memo slot rebound through ``global`` -- that worker-reachable
code reads or writes is a silent divergence hazard: under fork each worker
inherits a snapshot that then drifts; under spawn each worker re-imports a
fresh copy, so values written in the parent never arrive.  Either way the
state observed inside ``execute_shard`` is not the state the parent sees,
and results stop being a function of ``(spec, seed)``.

The rule is whole-program: build the project symbol table, classify every
module-level binding (mutable state vs constant, see
:mod:`repro.analysis.lint.symbols`), build the conservative call graph,
BFS from the worker entry points (``execute_shard`` / ``_worker_run`` in
``experiments/engine.py``), and flag every read or mutation of mutable
state inside the reachable set.  Dynamic calls conservatively pull in all
address-taken functions, so registry-dispatched shard runners are covered
-- a missed edge here would be a blessed race.

Reviewed exceptions (per-process ambient metric stacks, import-time-frozen
registries) carry inline waivers with reasons.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.analysis.lint.callgraph import call_graph
from repro.analysis.lint.dataflow import function_facts
from repro.analysis.lint.diagnostics import Diagnostic
from repro.analysis.lint.framework import Checker, SourceFile
from repro.analysis.lint.symbols import project_symbols

#: Worker entry points: (path suffix, function names) -- suffix-matched so
#: fixture trees carrying their own ``experiments/engine.py`` participate.
ENTRY_POINTS: tuple = (("experiments/engine.py", ("execute_shard", "_worker_run")),)


class ForkSafetyChecker(Checker):
    code = "RL006"
    name = "fork-safety"
    description = (
        "module-level mutable state must not be read or written by code "
        "reachable from multiprocessing worker entry points"
    )

    def check_project(self, sources: Sequence[SourceFile]) -> Iterable[Diagnostic]:
        project = project_symbols(sources)
        graph = call_graph(project)
        entries = []
        for suffix, names in ENTRY_POINTS:
            for module in project.modules:
                if not module.source.suffix_matches(suffix):
                    continue
                for name in names:
                    info = module.functions.get(name)
                    if info is not None:
                        entries.append(info.qualname)
        if not entries:
            return
        reached = graph.reachable_from(entries)
        for qualname in sorted(reached):
            function = graph.functions.get(qualname)
            if function is None:
                continue
            facts = function_facts(project, function)
            entry, _ = reached[qualname]
            entry_name = graph.functions[entry].name if entry in graph.functions else entry
            for use in facts.global_uses:
                target = use.target
                if not target.is_mutable_state:
                    continue
                verb = "mutates" if use.kind == "write" else "reads"
                yield self.diagnostic(
                    function.source,
                    use.node,
                    f"worker-reachable '{function.name}' (via entry point "
                    f"'{entry_name}') {verb} module-level mutable state "
                    f"'{target.name}' defined in {target.source.path}:"
                    f"{target.node.lineno}; such state diverges across "
                    f"multiprocessing workers -- pass it explicitly or freeze it",
                )
