"""RL005: RNG fork-label discipline.

``RandomSource.fork(label)`` derives a child seed from ``sha256(seed:label)``
-- which means the *label strings* are the real schema of the simulation's
randomness.  Two phases that accidentally share a label share a stream (a
statistical-independence bug that no test crashes on); a label built from
runtime state (an f-string over a counter, a joined list) can silently vary
between the cold and warm paths, breaking the replayability that the
bit-identity pins rely on.

RL005 therefore requires every ``fork`` / ``fork_rng`` label argument to be
statically resolvable, in exactly one of two sanctioned shapes:

* a **string literal** in canonical ``area:purpose`` form (lowercase
  ``[a-z0-9_-]`` segments joined by ``:``, at least two segments).  Literal
  labels are additionally checked for **global uniqueness** across the
  linted tree -- the "same label, same stream" property makes an accidental
  collision a correctness bug, not a style issue; or
* a **phase-suffix concatenation** ``<expr> + ":purpose"`` whose right
  operand is a literal ``:``-led suffix in canonical form (the established
  ``network.fork_rng(phase + ":sampling")`` idiom, where the phase prefix is
  itself threaded from a caller's literal).

Anything else -- a bare variable, an f-string, ``str.format``, ``%`` -- is
flagged: the label cannot be audited from the source text.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterable, Sequence

from repro.analysis.lint.diagnostics import Diagnostic
from repro.analysis.lint.framework import Checker, SourceFile

#: ``area:purpose`` (two or more lowercase segments).
LABEL_RE = re.compile(r"^[a-z0-9][a-z0-9_-]*(:[a-z0-9][a-z0-9_-]*)+$")

#: A ``:``-led literal suffix appended to a phase expression.
SUFFIX_RE = re.compile(r"^(:[a-z0-9][a-z0-9_-]*)+$")

FORK_NAMES = frozenset({"fork", "fork_rng"})


class ForkLabelChecker(Checker):
    code = "RL005"
    name = "fork-label-discipline"
    description = "RNG fork labels must be literal, canonical, and globally unique"

    def check_project(self, sources: Sequence[SourceFile]) -> Iterable[Diagnostic]:
        literal_sites: dict[str, list[tuple[SourceFile, ast.Call]]] = {}
        for source in sources:
            for node in ast.walk(source.tree):
                if not isinstance(node, ast.Call) or not self._is_fork_call(node):
                    continue
                label = node.args[0] if node.args else None
                if label is None:
                    yield self.diagnostic(source, node, "fork call without a label argument")
                    continue
                diagnostic = self._check_label(source, node, label, literal_sites)
                if diagnostic is not None:
                    yield diagnostic
        for label, sites in sorted(literal_sites.items()):
            if len(sites) > 1:
                for source, node in sites[1:]:
                    first = sites[0]
                    yield self.diagnostic(
                        source,
                        node,
                        f"fork label {label!r} reused (first at "
                        f"{first[0].path}:{first[1].lineno}); labels with the same "
                        "text share one RNG stream, so every literal label must be "
                        "globally unique",
                    )

    @staticmethod
    def _is_fork_call(node: ast.Call) -> bool:
        func = node.func
        if isinstance(func, ast.Name):
            return func.id in FORK_NAMES
        if isinstance(func, ast.Attribute):
            return func.attr in FORK_NAMES
        return False

    def _check_label(
        self,
        source: SourceFile,
        call: ast.Call,
        label: ast.AST,
        literal_sites: dict[str, list[tuple[SourceFile, ast.Call]]],
    ) -> Diagnostic | None:
        if isinstance(label, ast.Constant) and isinstance(label.value, str):
            if not LABEL_RE.match(label.value):
                return self.diagnostic(
                    source,
                    call,
                    f"fork label {label.value!r} is not in canonical 'area:purpose' "
                    "form (lowercase [a-z0-9_-] segments joined by ':')",
                )
            literal_sites.setdefault(label.value, []).append((source, call))
            return None
        if isinstance(label, ast.BinOp) and isinstance(label.op, ast.Add):
            right = label.right
            if isinstance(right, ast.Constant) and isinstance(right.value, str):
                if SUFFIX_RE.match(right.value):
                    return None
                return self.diagnostic(
                    source,
                    call,
                    f"fork label suffix {right.value!r} must be a ':'-led canonical "
                    "segment (e.g. phase + ':sampling')",
                )
        return self.diagnostic(
            source,
            call,
            "fork label is not statically auditable; use a literal 'area:purpose' "
            "string or the phase + ':purpose' concatenation idiom",
        )
