"""Small reporting helpers used by benchmarks and examples.

The benchmark harness regenerates, for every theorem, a table of
``parameter -> measured rounds / approximation ratio`` next to the paper's
bound.  These helpers format such tables as GitHub-flavoured markdown so the
output can be pasted directly into EXPERIMENTS.md.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence


def format_markdown_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render a markdown table with the given headers and rows."""
    lines = ["| " + " | ".join(str(h) for h in headers) + " |"]
    lines.append("|" + "|".join("---" for _ in headers) + "|")
    for row in rows:
        lines.append("| " + " | ".join(_format_cell(cell) for cell in row) + " |")
    return "\n".join(lines)


def _format_cell(cell: object) -> str:
    if isinstance(cell, float):
        if cell == float("inf"):
            return "inf"
        if abs(cell) >= 1000 or (abs(cell) < 0.01 and cell != 0):
            return f"{cell:.3g}"
        return f"{cell:.3f}".rstrip("0").rstrip(".")
    return str(cell)


def format_key_values(values: Mapping[str, object], title: str | None = None) -> str:
    """Render a mapping as an indented, human-readable block."""
    lines: list[str] = []
    if title:
        lines.append(title)
    for key, value in values.items():
        lines.append(f"  {key}: {_format_cell(value)}")
    return "\n".join(lines)


def summarize_robustness(
    rows: Iterable[Sequence[object]], rate_index: int, overhead_index: int
) -> str:
    """One-line mean round overhead per drop rate (the E15 finalizer's note).

    ``rows`` are table rows; ``rate_index`` / ``overhead_index`` locate the
    drop-rate and overhead-factor columns.  Rows whose overhead is not a
    number (a run the fault schedule beat entirely) are skipped.
    """
    by_rate: dict = {}
    for row in rows:
        overhead = row[overhead_index]
        if isinstance(overhead, (int, float)):
            by_rate.setdefault(row[rate_index], []).append(float(overhead))
    parts = [
        f"{rate:g} -> {sum(values) / len(values):.2f}x"
        for rate, values in sorted(by_rate.items())
    ]
    return "mean round overhead by drop rate: " + ", ".join(parts)


def summarize_comparison(
    label_a: str, rounds_a: float, label_b: str, rounds_b: float
) -> str:
    """One-line comparison of two round counts (used by examples)."""
    if rounds_b <= 0:
        return f"{label_a}: {rounds_a:.0f} rounds; {label_b}: {rounds_b:.0f} rounds"
    factor = rounds_a / rounds_b
    return (
        f"{label_a}: {rounds_a:.0f} rounds vs {label_b}: {rounds_b:.0f} rounds "
        f"({factor:.2f}x)"
    )
