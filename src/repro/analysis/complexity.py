"""Scaling analysis: fitting measured round counts against the paper's bounds.

Every upper-bound theorem in the paper has the form ``Õ(n^e)`` (or ``Õ(k^e)``).
The benchmarks sweep the relevant parameter, measure total rounds on the
simulator and use :func:`fit_power_law` to extract the empirical exponent,
which EXPERIMENTS.md reports next to the theoretical one.  Because the hidden
polylog factors are real at simulation scale, :func:`fit_power_law_with_log`
additionally fits ``c · x^e · log2(x)`` which is usually the better model.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np


@dataclass
class PowerLawFit:
    """Result of a least-squares fit of ``y ≈ c · x^e`` (optionally with a log factor).

    Attributes
    ----------
    exponent:
        The fitted exponent ``e``.
    coefficient:
        The fitted constant ``c``.
    r_squared:
        Coefficient of determination of the fit in log-log space.
    with_log_factor:
        Whether the model included a multiplicative ``log2(x)`` term.
    """

    exponent: float
    coefficient: float
    r_squared: float
    with_log_factor: bool = False

    def predict(self, x: float) -> float:
        """Evaluate the fitted model at ``x``."""
        value = self.coefficient * (x ** self.exponent)
        if self.with_log_factor:
            value *= math.log2(max(x, 2.0))
        return value


def _fit_loglog(log_x: np.ndarray, log_y: np.ndarray) -> tuple[float, float, float]:
    slope, intercept = np.polyfit(log_x, log_y, 1)
    predicted = slope * log_x + intercept
    residual = np.sum((log_y - predicted) ** 2)
    total = np.sum((log_y - np.mean(log_y)) ** 2)
    r_squared = 1.0 - residual / total if total > 0 else 1.0
    return float(slope), float(math.exp(intercept)), float(r_squared)


def fit_power_law(xs: Sequence[float], ys: Sequence[float]) -> PowerLawFit:
    """Fit ``y ≈ c · x^e`` by linear regression in log-log space."""
    if len(xs) != len(ys) or len(xs) < 2:
        raise ValueError("need at least two (x, y) pairs")
    if any(x <= 0 for x in xs) or any(y <= 0 for y in ys):
        raise ValueError("power-law fitting requires positive values")
    log_x = np.log(np.asarray(xs, dtype=float))
    log_y = np.log(np.asarray(ys, dtype=float))
    exponent, coefficient, r_squared = _fit_loglog(log_x, log_y)
    return PowerLawFit(exponent=exponent, coefficient=coefficient, r_squared=r_squared)


def fit_power_law_with_log(xs: Sequence[float], ys: Sequence[float]) -> PowerLawFit:
    """Fit ``y ≈ c · x^e · log2(x)`` (the shape the ``Õ`` notation hides)."""
    if len(xs) != len(ys) or len(xs) < 2:
        raise ValueError("need at least two (x, y) pairs")
    adjusted = [y / math.log2(max(x, 2.0)) for x, y in zip(xs, ys, strict=True)]
    base = fit_power_law(xs, adjusted)
    return PowerLawFit(
        exponent=base.exponent,
        coefficient=base.coefficient,
        r_squared=base.r_squared,
        with_log_factor=True,
    )


def exponent_gap(measured: PowerLawFit, theoretical_exponent: float) -> float:
    """Absolute difference between the fitted and the theoretical exponent."""
    return abs(measured.exponent - theoretical_exponent)


def geometric_sweep(start: int, stop: int, points: int) -> list[int]:
    """Geometrically spaced integer sweep values (inclusive, deduplicated).

    The benchmarks use this for their ``n`` / ``k`` sweeps so the log-log fits
    get evenly spaced support.
    """
    if start < 1 or stop < start or points < 2:
        raise ValueError("need 1 <= start <= stop and at least two points")
    values = np.geomspace(start, stop, points)
    result: list[int] = []
    for value in values:
        candidate = int(round(value))
        if not result or candidate > result[-1]:
            result.append(candidate)
    return result
