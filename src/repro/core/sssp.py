"""Exact single-source shortest paths in the HYBRID model (Theorem 1.3).

Theorem 1.3 is an instantiation of the Theorem 4.1 framework with an *exact*
CLIQUE SSSP algorithm and ``γ = 0``: the source is added to the skeleton
(Lemma 4.5), so no representative detour is needed and the framework preserves
exactness.  The paper plugs in the ``Õ(n^{1/6})``-round algorithm of [7] to
obtain ``Õ(n^{2/5})`` HYBRID rounds; we plug in the exact Bellman-Ford CLIQUE
algorithm (``δ = 1``, see DESIGN.md) and validate the framework's runtime
formula against that ``δ``.

All graph-heavy phases (the depth-``h`` skeleton exploration and the final
Equation (1) combination, reached through :mod:`repro.core.kssp`) run on the
batched multi-source kernels of :class:`~repro.graphs.graph.WeightedGraph`,
so a single-source query at ``n`` in the thousands completes in well under a
second on the CSR backend (see benchmarks/BENCH_core.json).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.clique.interfaces import CliqueShortestPathAlgorithm
from repro.clique.sssp import BroadcastBellmanFordSSSP
from repro.core.context import SkeletonContext
from repro.core.kssp import ShortestPathsResult, shortest_paths_via_clique
from repro.graphs.graph import INFINITY
from repro.hybrid.network import HybridNetwork


@dataclass
class SSSPResult:
    """Distances from a single source, plus the framework run statistics.

    ``distances`` holds one entry per node of the network, including
    ``float('inf')`` for nodes unreachable from the source -- the same
    contract as the ``inf`` entries of :attr:`APSPResult.matrix`.  (Earlier
    revisions silently dropped unreachable nodes from the dict, so iterating
    it disagreed with the APSP result on disconnected graphs.)
    """

    source: int
    distances: dict[int, float]
    rounds: int
    skeleton_size: int
    hop_length: int
    clique_rounds: int

    def distance(self, node: int) -> float:
        """The computed distance ``d̃(node, source)`` (exact for Theorem 1.3).

        Returns ``INFINITY`` for unreachable nodes.
        """
        return self.distances.get(node, INFINITY)


def sssp_exact(
    network: HybridNetwork,
    source: int,
    algorithm: CliqueShortestPathAlgorithm | None = None,
    phase: str = "sssp",
    context: SkeletonContext | None = None,
) -> SSSPResult:
    """Solve SSSP exactly in the HYBRID model (Theorem 1.3).

    ``algorithm`` must be an exact CLIQUE SSSP algorithm (``α = 1, β = 0,
    γ = 0``); it defaults to the broadcast Bellman-Ford substitute.
    ``context`` may supply prepared preprocessing state whose skeleton
    contains ``source`` (Lemma 4.5 -- exactness needs the source in the
    skeleton); it is forwarded to the Theorem 4.1 framework.
    """
    algorithm = algorithm or BroadcastBellmanFordSSSP()
    if not algorithm.spec.exact:
        raise ValueError("Theorem 1.3 requires an exact CLIQUE algorithm")
    if context is not None and not context.skeleton.contains(source):
        raise ValueError("the prepared skeleton must contain the SSSP source (Lemma 4.5)")
    result: ShortestPathsResult = shortest_paths_via_clique(
        network, [source], algorithm, phase=phase, context=context
    )
    distances = {
        node: result.estimates[node].get(source, INFINITY) for node in range(network.n)
    }
    return SSSPResult(
        source=source,
        distances=distances,
        rounds=result.rounds,
        skeleton_size=result.skeleton_size,
        hop_length=result.hop_length,
        clique_rounds=result.clique_rounds,
    )
