"""The k-source shortest-path framework (Section 4, Theorem 4.1, Algorithm 5).

``shortest_paths_via_clique`` takes an arbitrary CLIQUE shortest-path
algorithm ``A`` (parameterised by ``γ, δ, η, α, β``) and turns it into a HYBRID
algorithm:

1. ``Compute-Skeleton`` with sampling probability ``1/n^{1-x}`` where
   ``x = 2/(3+2δ)`` balances the CLIQUE simulation cost against the local
   exploration cost (Algorithm 6).  For a single source (``γ = 0``) the source
   itself is added to the skeleton (Lemma 4.5).
2. ``Compute-Representatives``: every source tags its closest skeleton node
   and the pairs are made public knowledge (Algorithm 7).
3. ``Clique-Simulation``: ``A`` runs on the skeleton through the token-routing
   based transport of Corollary 4.1 (Algorithm 8).
4. A final local phase of ``η·h`` rounds floods the skeleton estimates and
   gives every node its ``η·h``-hop-limited distances; each node then combines
   everything with Equation (1).

The resulting guarantees (Theorem 4.1): runtime ``Õ(η · n^{1-x})``,
approximation factor ``2α + 1 + β/T_B`` on weighted graphs, ``α + 2/η + β/T_B``
on unweighted graphs, and no loss at all for a single source (``α + β/T_B``).
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.clique.interfaces import CliqueAlgorithmSpec, CliqueShortestPathAlgorithm
from repro.core.context import SkeletonContext, prepare_skeleton_context
from repro.core.representatives import Representatives, compute_representatives
from repro.core.skeleton import (
    Skeleton,
    framework_exponent,
    framework_sampling_probability,
)
from repro.graphs.graph import INFINITY
from repro.hybrid.network import HybridNetwork


@dataclass
class ShortestPathsResult:
    """Result of the Theorem 4.1 framework (and of Theorem 1.3 via ``γ = 0``).

    Attributes
    ----------
    sources:
        The query sources (original node IDs).
    estimates:
        Per node ``v``: ``{source: d̃(v, source)}``, satisfying the transformed
        approximation guarantee of Theorem 4.1.
    rounds:
        Total rounds consumed.
    skeleton_size / hop_length:
        Parameters of the skeleton used.
    clique_rounds:
        Number of CLIQUE rounds the simulated algorithm took.
    spec:
        The plugged-in CLIQUE algorithm's declared parameters.
    exploration_depth:
        The depth ``η·h`` of the final local phase (the ``T_B`` surrogate in
        the approximation bound).
    """

    sources: list[int]
    estimates: list[dict[int, float]]
    rounds: int
    skeleton_size: int
    hop_length: int
    clique_rounds: int
    spec: CliqueAlgorithmSpec
    exploration_depth: int

    def estimate(self, node: int, source: int) -> float:
        """The estimate ``d̃(node, source)``."""
        return self.estimates[node].get(source, INFINITY)

    def guaranteed_alpha(self, weighted: bool) -> float:
        """The multiplicative guarantee of Theorem 4.1 for this run.

        ``β`` enters divided by ``T_B``; we use the exploration depth as the
        (conservative) ``T_B`` surrogate, matching Lemma 4.3.
        """
        beta_term = self.spec.beta / max(1, self.exploration_depth)
        if len(self.sources) == 1:
            return self.spec.alpha + beta_term
        if weighted:
            return 2.0 * self.spec.alpha + 1.0 + beta_term
        return self.spec.alpha + 2.0 / self.spec.eta + beta_term


def shortest_paths_via_clique(
    network: HybridNetwork,
    sources: Sequence[int],
    algorithm: CliqueShortestPathAlgorithm,
    phase: str = "kssp",
    context: SkeletonContext | None = None,
) -> ShortestPathsResult:
    """Run Algorithm 5 (``SP-Simulation``) with the given CLIQUE algorithm.

    ``context`` may supply a prepared skeleton and CLIQUE transport (for a
    single source the caller must have forced the source into the skeleton,
    e.g. via :meth:`SkeletonContext.extended` -- Lemma 4.5); without one the
    prologue is built inline exactly as before the extraction.
    """
    if not sources:
        raise ValueError("at least one source is required")
    sources = sorted(set(sources))
    rounds_before = network.metrics.total_rounds
    n = network.n
    spec = algorithm.spec

    # Step 1: skeleton of size ~n^x with x = 2/(3+2δ); a single source joins it.
    single_source = len(sources) == 1
    if context is None:
        probability = framework_sampling_probability(n, spec.delta)
        context = prepare_skeleton_context(
            network,
            probability,
            forced_members=sources if single_source else (),
            phase=phase + ":skeleton",
            keep_local_knowledge=True,
        )
    skeleton = context.skeleton

    # Step 2: representatives of the sources on the skeleton.
    representatives = compute_representatives(
        network, skeleton, sources, phase=phase + ":representatives"
    )

    # Step 3: simulate the CLIQUE algorithm on the skeleton.
    transport = context.transport(phase + ":simulation")
    clique_rounds_before = transport.rounds_used
    clique_sources = [skeleton.index_of[rep] for rep in representatives.skeleton_sources]
    skeleton_estimates = algorithm.run(transport, skeleton.incident_edges(), clique_sources)

    # Step 4: local spreading of the results and combination via Equation (1).
    exploration_depth = max(
        skeleton.hop_length, int(math.ceil(spec.eta * skeleton.hop_length))
    )
    network.charge_local_rounds(exploration_depth, phase + ":result-spread")
    estimates = _combine_estimates(
        network,
        skeleton,
        representatives,
        skeleton_estimates,
        sources,
        exploration_depth,
    )

    rounds = network.metrics.total_rounds - rounds_before
    return ShortestPathsResult(
        sources=list(sources),
        estimates=estimates,
        rounds=rounds,
        skeleton_size=skeleton.size,
        hop_length=skeleton.hop_length,
        clique_rounds=transport.rounds_used - clique_rounds_before,
        spec=spec,
        exploration_depth=exploration_depth,
    )


def _combine_estimates(
    network: HybridNetwork,
    skeleton: Skeleton,
    representatives: Representatives,
    skeleton_estimates: Sequence[dict[int, float]],
    sources: Sequence[int],
    exploration_depth: int,
) -> list[dict[int, float]]:
    """Equation (1): combine local exact distances with skeleton estimates.

    ``d̃(v, s) = min( d_{ηh}(v, s),
                     min_{u ∈ V_S near v} d_h(v, u) + d̃(u, r_s) + d_h(r_s, s) )``

    The first term is the literal ``d_{ηh}`` (one batched kernel call over all
    sources); the skeleton detour term is a vectorised min-plus product over
    the near-skeleton matrix.
    """
    n = network.n
    n_s = skeleton.size
    estimates: list[dict[int, float]] = [dict() for _ in range(n)]

    # The ηh-limited distances d_{ηh}(v, s), one row per source (symmetric).
    local_limited = network.local_graph.hop_limited_distance_matrix(sources, exploration_depth)

    # near[v, i] = d_h(v, skeleton node i), shared by every source.
    if skeleton.knowledge_matrix is not None and n_s:
        near = skeleton.knowledge_matrix[:, np.asarray(skeleton.nodes, dtype=np.int64)]
    else:
        near = np.full((n, n_s), np.inf)
        for v in range(n):
            for skeleton_node, d_to_skeleton in skeleton.local_distances[v].items():
                near[v, skeleton.index_of[skeleton_node]] = d_to_skeleton

    for row, source in enumerate(sources):
        rep = representatives.representative[source]
        rep_index = skeleton.index_of[rep]
        rep_distance = representatives.distance_to_representative[source]
        to_rep = np.fromiter(
            (skeleton_estimates[u_index].get(rep_index, INFINITY) for u_index in range(n_s)),
            dtype=np.float64,
            count=n_s,
        )
        best = local_limited[row].copy()
        if n_s:
            detour = (near + to_rep[np.newaxis, :]).min(axis=1) + rep_distance
            np.minimum(best, detour, out=best)
        for v, value in enumerate(best.tolist()):
            estimates[v][source] = value
    return estimates


def predicted_framework_rounds(n: int, spec: CliqueAlgorithmSpec) -> float:
    """The Theorem 4.1 runtime shape ``η · n^{1-x}`` (without polylog factors)."""
    x = framework_exponent(spec.delta)
    return spec.eta * (n ** (1.0 - x))
