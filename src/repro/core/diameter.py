"""Diameter approximation in the HYBRID model (Section 5, Theorem 5.1 / 1.4).

``approximate_diameter`` takes an ``(α, β)``-approximate CLIQUE diameter
algorithm and turns it into a HYBRID algorithm for the *unweighted* diameter
``D(G)`` (Algorithm 9):

1. Build a skeleton of size ``~n^x`` with ``x = 2/(3+2δ)``.
2. Simulate the CLIQUE algorithm on the skeleton: all skeleton nodes learn an
   ``(α, β)``-estimate ``D̃(S)`` of the skeleton's weighted diameter.
3. A local phase of ``η·h + 1`` rounds spreads ``D̃(S)`` to every node (every
   node has a skeleton node within ``h`` hops w.h.p.) and lets every node
   compute the largest hop distance ``h_v`` it sees in its ``(η·h+1)``-hop
   neighbourhood.
4. The maximum ``ĥ = max_v h_v`` is aggregated over the global network in
   ``O(log n)`` rounds (Lemma B.2).
5. Output ``D̃ = ĥ`` if ``ĥ ≤ η·h`` (then ``D`` was computed exactly), else
   ``D̃ = D̃(S) + 2h`` (Equation (3)).

Guarantee (Theorem 5.1): ``D ≤ D̃ ≤ (α + 2/η + β/T_B) · D``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.clique.interfaces import CliqueAlgorithmSpec, CliqueDiameterAlgorithm
from repro.core.context import SkeletonContext, prepare_skeleton_context
from repro.core.skeleton import framework_sampling_probability
from repro.hybrid.network import HybridNetwork
from repro.localnet.aggregation import aggregate_max


@dataclass
class DiameterResult:
    """Result of the diameter approximation (Algorithm 9).

    Attributes
    ----------
    estimate:
        The diameter estimate ``D̃``.
    used_local_estimate:
        True when ``ĥ ≤ η·h`` and the algorithm answered exactly from the
        local phase; False when the skeleton estimate branch was taken.
    skeleton_estimate:
        The value ``D̃(S)`` produced by the simulated CLIQUE algorithm.
    local_max_hop:
        The aggregated maximum locally observed hop distance ``ĥ``.
    rounds / skeleton_size / hop_length / clique_rounds / spec / exploration_depth:
        Run statistics, as in the k-SSP framework result.
    """

    estimate: float
    used_local_estimate: bool
    skeleton_estimate: float
    local_max_hop: float
    rounds: int
    skeleton_size: int
    hop_length: int
    clique_rounds: int
    spec: CliqueAlgorithmSpec
    exploration_depth: int

    def guaranteed_alpha(self) -> float:
        """The multiplicative guarantee ``α + 2/η + β/T_B`` of Theorem 5.1."""
        return (
            self.spec.alpha
            + 2.0 / self.spec.eta
            + self.spec.beta / max(1, self.exploration_depth)
        )


def approximate_diameter(
    network: HybridNetwork,
    algorithm: CliqueDiameterAlgorithm,
    phase: str = "diameter",
    context: SkeletonContext | None = None,
) -> DiameterResult:
    """Run Algorithm 9 (``Diam-Simulation``) with the given CLIQUE algorithm.

    The input graph must be unweighted (Theorem 5.1 approximates the hop
    diameter ``D(G)``); a weighted graph raises ``ValueError``.  ``context``
    may supply a prepared skeleton and CLIQUE transport from an earlier query
    on the same network.
    """
    if not network.graph.is_unweighted():
        raise ValueError("the diameter algorithm of Section 5 targets unweighted graphs")
    rounds_before = network.metrics.total_rounds
    n = network.n
    spec = algorithm.spec

    # Step 1: skeleton of size ~n^x.
    if context is None:
        probability = framework_sampling_probability(n, spec.delta)
        context = prepare_skeleton_context(
            network,
            probability,
            phase=phase + ":skeleton",
            keep_local_knowledge=False,
        )
    skeleton = context.skeleton

    # Step 2: simulate the CLIQUE diameter algorithm on the skeleton.
    transport = context.transport(phase + ":simulation")
    clique_rounds_before = transport.rounds_used
    skeleton_estimate = algorithm.run(transport, skeleton.incident_edges())

    # Step 3: local phase of η·h + 1 rounds.  Every node's largest locally
    # observed hop distance h_v is one batched bounded-eccentricity kernel call.
    exploration_depth = int(math.ceil(spec.eta * skeleton.hop_length)) + 1
    network.charge_local_rounds(exploration_depth, phase + ":local-horizon")
    eccentricities = network.local_graph.hop_eccentricities(max_hops=exploration_depth)
    local_max = {node: float(eccentricities[node]) for node in range(n)}

    # Step 4: aggregate ĥ = max_v h_v over the global network (Lemma B.2).
    local_max_hop = aggregate_max(network, local_max, phase=phase + ":aggregate")
    if local_max_hop is None:
        local_max_hop = 0.0

    # Step 5: Equation (3).
    threshold = exploration_depth - 1
    if local_max_hop <= threshold:
        estimate = local_max_hop
        used_local = True
    else:
        estimate = skeleton_estimate + 2.0 * skeleton.hop_length
        used_local = False

    rounds = network.metrics.total_rounds - rounds_before
    return DiameterResult(
        estimate=estimate,
        used_local_estimate=used_local,
        skeleton_estimate=skeleton_estimate,
        local_max_hop=local_max_hop,
        rounds=rounds,
        skeleton_size=skeleton.size,
        hop_length=skeleton.hop_length,
        clique_rounds=transport.rounds_used - clique_rounds_before,
        spec=spec,
        exploration_depth=exploration_depth,
    )
