"""Exact all-pairs shortest paths in ``Õ(√n)`` rounds (Section 3, Theorem 1.1).

The algorithm follows Augustine et al. SODA'20 up to its last step and then
replaces the broadcast of all ``|V| · |V_S|`` distance labels (the bottleneck
that forced ``Õ(n^{2/3})`` rounds) with a token-routing instance:

1. Build a skeleton ``S`` with sampling probability ``1/√n`` and hop length
   ``h ∈ Θ(√n log n)`` -- ``Õ(√n)`` local rounds.
2. Make the skeleton edge set ``E_S`` public knowledge via token dissemination
   (``Õ(|V_S|) = Õ(√n)`` rounds); every node now computes all skeleton-to-
   skeleton distances locally.
3. Every node ``v`` combines its ``h``-limited distances with the skeleton
   distances to obtain ``d(v, s)`` for every skeleton node ``s`` together with
   the *connector*: the skeleton node ``s'`` through which a shortest
   ``v``-``s`` path enters the skeleton.
4. **Token routing (the new step):** every node sends, for every skeleton node
   ``s``, the token ``⟨d_h(v, s'), v, s'⟩`` to ``s``.  This is an instance with
   ``k_S = |V_S|``, ``k_R = n`` and total workload ``K = 2 n |V_S|``, solved in
   ``Õ(K/n + √n) = Õ(√n)`` rounds by Theorem 2.2.
5. Every skeleton node now knows its distance to every node and spreads the
   labels ``⟨d(s, v), s, v⟩`` through its ``h``-hop neighbourhood
   (``Õ(√n)`` local rounds).
6. Every node ``u`` outputs ``d(u, v) = min(d_h(u, v),
   min_{s ∈ V_S ∩ ball_h(u)} d_h(u, s) + d(s, v))``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.context import SkeletonContext, prepare_skeleton_context
from repro.core.skeleton import Skeleton
from repro.core.token_routing import RoutingToken
from repro.hybrid.network import HybridNetwork


@dataclass
class APSPResult:
    """Result of the exact APSP algorithm.

    Attributes
    ----------
    matrix:
        Dense ``n x n`` numpy array of distances (``inf`` for disconnected
        pairs); row ``u`` is the output of node ``u``.
    rounds:
        Total rounds consumed.
    skeleton_size / hop_length:
        Parameters of the skeleton used.
    routing_tokens:
        Number of tokens moved by the token-routing step (``≈ n · |V_S|``).
    """

    matrix: np.ndarray
    rounds: int
    skeleton_size: int
    hop_length: int
    routing_tokens: int

    def distance(self, u: int, v: int) -> float:
        """The computed distance ``d(u, v)``."""
        return float(self.matrix[u, v])

    def distances_from(self, u: int) -> dict[int, float]:
        """Node ``u``'s output as a dict (omitting unreachable nodes)."""
        row = self.matrix[u]
        return {v: float(row[v]) for v in range(row.shape[0]) if np.isfinite(row[v])}


def apsp_exact(
    network: HybridNetwork,
    phase: str = "apsp",
    context: SkeletonContext | None = None,
) -> APSPResult:
    """Solve APSP exactly in the HYBRID model (Theorem 1.1).

    ``context`` may hold the prepared preprocessing state (skeleton, published
    edge set, token router) of an earlier query on the same network; without
    one the prologue is built inline under this call's phases, which is the
    pre-session behaviour round for round.
    """
    rounds_before = network.metrics.total_rounds
    n = network.n

    # Step 1: skeleton with sampling probability 1/√n.
    if context is None:
        probability = min(1.0, 1.0 / math.sqrt(n))
        context = prepare_skeleton_context(
            network,
            probability,
            phase=phase + ":skeleton",
            keep_local_knowledge=True,
        )
    skeleton = context.skeleton
    if skeleton.knowledge_matrix is None:
        raise ValueError("apsp_exact needs a context prepared with keep_local_knowledge")
    n_s = skeleton.size

    # Step 2: make E_S public knowledge and solve APSP on the skeleton locally
    # (free if the context already published it for an earlier query).
    skeleton_distances = context.published_skeleton_distances(phase + ":publish-skeleton")

    # Step 3: every node computes d(v, s) and the connector for every skeleton s.
    near_matrix = _near_skeleton_matrix(network, skeleton)
    dist_to_skeleton, connector = _distances_to_skeleton(near_matrix, skeleton_distances)

    # Step 4: token routing of the connector labels (the Theorem 1.1 step).
    tokens: list[RoutingToken] = []
    for v in range(n):
        for s_index in range(n_s):
            receiver = skeleton.original_id(s_index)
            conn_index = connector[v, s_index]
            if conn_index < 0:
                continue
            tokens.append(
                RoutingToken(
                    sender=v,
                    receiver=receiver,
                    index=s_index,
                    payload=(float(near_matrix[v, conn_index]), int(conn_index)),
                )
            )
    router = context.apsp_router(phase + ":routing")
    routing = router.route(tokens)

    # Step 5: each skeleton node s computes d(s, v) = d_S(s, s') + d_h(s', v)
    # from the received tokens ...
    skeleton_to_all = np.full((n_s, n), np.inf)
    for s_index in range(n_s):
        skeleton_to_all[s_index, skeleton.original_id(s_index)] = 0.0
    for receiver, delivered in routing.delivered.items():
        s_index = skeleton.index_of[receiver]
        for token in delivered:
            d_to_connector, conn_index = token.payload
            candidate = skeleton_distances[s_index, conn_index] + d_to_connector
            if candidate < skeleton_to_all[s_index, token.sender]:
                skeleton_to_all[s_index, token.sender] = candidate
    # ... and spreads the labels through its h-hop neighbourhood.
    network.charge_local_rounds(skeleton.hop_length, phase + ":label-spread")

    # Step 6: final combination at every node.
    matrix = _combine_distances(network, skeleton, near_matrix, skeleton_to_all)

    rounds = network.metrics.total_rounds - rounds_before
    return APSPResult(
        matrix=matrix,
        rounds=rounds,
        skeleton_size=n_s,
        hop_length=skeleton.hop_length,
        routing_tokens=len(tokens),
    )


def _near_skeleton_matrix(network: HybridNetwork, skeleton: Skeleton) -> np.ndarray:
    """Matrix ``A[v, i] = d_h(v, skeleton node i)`` (inf when outside the ball)."""
    n = network.n
    n_s = skeleton.size
    if skeleton.knowledge_matrix is not None and n_s:
        return skeleton.knowledge_matrix[:, np.asarray(skeleton.nodes, dtype=np.int64)].copy()
    matrix = np.full((n, n_s), np.inf)
    for v in range(n):
        for original, distance in skeleton.local_distances[v].items():
            matrix[v, skeleton.index_of[original]] = distance
    return matrix


def _distances_to_skeleton(
    near_matrix: np.ndarray, skeleton_distances: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Min-plus product giving ``d(v, s)`` plus the connector achieving it."""
    n, n_s = near_matrix.shape
    best = np.full((n, n_s), np.inf)
    connector = np.full((n, n_s), -1, dtype=np.int64)
    for via in range(n_s):
        candidate = near_matrix[:, via : via + 1] + skeleton_distances[via : via + 1, :]
        improved = candidate < best
        best = np.where(improved, candidate, best)
        connector = np.where(improved, via, connector)
    return best, connector


def _combine_distances(
    network: HybridNetwork,
    skeleton: Skeleton,
    near_matrix: np.ndarray,
    skeleton_to_all: np.ndarray,
) -> np.ndarray:
    """Final per-node combination (step 6): local distances vs routes via the skeleton."""
    n = network.n
    matrix = np.full((n, n), np.inf)
    np.fill_diagonal(matrix, 0.0)
    if skeleton.knowledge_matrix is not None:
        np.minimum(matrix, skeleton.knowledge_matrix, out=matrix)
    else:
        local_knowledge = skeleton.local_knowledge or []
        for u in range(n):
            for v, distance in local_knowledge[u].items():
                if distance < matrix[u, v]:
                    matrix[u, v] = distance
    n_s = skeleton.size
    candidate = np.empty((n, n))
    for s_index in range(n_s):
        np.add(
            near_matrix[:, s_index : s_index + 1],
            skeleton_to_all[s_index : s_index + 1, :],
            out=candidate,
        )
        np.minimum(matrix, candidate, out=matrix)
    return matrix
