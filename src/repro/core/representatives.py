"""Source representatives on the skeleton (Algorithm 7, Fact 4.4).

Sources of a shortest-path problem on ``G`` will generally not coincide with
the randomly sampled skeleton nodes.  Each source therefore *tags* the closest
skeleton node (w.r.t. its ``h``-limited distance) as its representative, and
the pairs ``⟨d_h(s, r_s), s, r_s⟩`` are made public knowledge with one token
dissemination.  Afterwards every node can translate a distance to a
representative into a distance estimate to the original source.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.core.skeleton import Skeleton
from repro.hybrid.network import HybridNetwork
from repro.localnet.token_dissemination import disseminate_tokens


@dataclass
class Representatives:
    """Mapping of sources to their skeleton representatives (Fact 4.4).

    Attributes
    ----------
    representative:
        ``source -> skeleton node (original ID)`` chosen as its representative
        (``source`` itself when the source was sampled into the skeleton).
    distance_to_representative:
        ``source -> d_h(source, representative)`` (0 for skeleton sources).
    skeleton_sources:
        The distinct representatives, i.e. the sources of the problem solved
        on the skeleton.
    rounds:
        Rounds consumed (dominated by the token dissemination, ``Õ(√k)``).
    """

    representative: dict[int, int]
    distance_to_representative: dict[int, float]
    skeleton_sources: list[int]
    rounds: int


def compute_representatives(
    network: HybridNetwork,
    skeleton: Skeleton,
    sources: Sequence[int],
    phase: str = "representatives",
) -> Representatives:
    """Run Algorithm 7 (``Compute-Representatives``) for the given sources.

    Every source picks the skeleton node minimising its ``h``-limited distance
    (itself if it is a skeleton node).  If a source has no skeleton node within
    ``h`` hops -- possible at simulation scale even though Lemma C.1 excludes
    it w.h.p. -- the closest skeleton node in the whole graph is used instead
    and the (rare) extra cost is ignored; benchmarks record how often this
    fallback fired via the returned distances.
    """
    rounds_before = network.metrics.total_rounds
    representative: dict[int, int] = {}
    distance: dict[int, float] = {}

    for source in sources:
        if skeleton.contains(source):
            representative[source] = source
            distance[source] = 0.0
            continue
        closest = skeleton.closest_skeleton_node(source)
        if closest is None:
            # w.h.p. impossible for h = ξ x ln n (Lemma C.1); fall back to the
            # true closest skeleton node to keep small simulations correct.
            exact = network.local_graph.dijkstra(source, targets=list(skeleton.nodes))
            candidates = [(exact[s], s) for s in skeleton.nodes if s in exact]
            if not candidates:
                raise ValueError("graph must be connected")
            best_distance, closest = min(candidates)
            representative[source] = closest
            distance[source] = best_distance
        else:
            representative[source] = closest
            distance[source] = skeleton.local_distances[source][closest]

    # Make ⟨d_h(s, r_s), s, r_s⟩ public knowledge (token dissemination, Õ(√k)).
    tokens: dict[int, list[tuple[float, int, int]]] = {}
    for source in sources:
        tokens.setdefault(source, []).append(
            (distance[source], source, representative[source])
        )
    disseminate_tokens(network, tokens, phase=phase + ":announce")

    skeleton_sources = sorted(set(representative.values()))
    rounds = network.metrics.total_rounds - rounds_before
    return Representatives(
        representative=representative,
        distance_to_representative=distance,
        skeleton_sources=skeleton_sources,
        rounds=rounds,
    )
