"""Prepared skeleton state shared between shortest-path queries.

Every algorithm of the paper pays the same ``Õ(√n)``-shaped preprocessing
before it answers anything: build a skeleton (Algorithm 6), optionally make
its edge set public knowledge (token dissemination) and solve APSP on it
locally, and optionally stand up the CLIQUE-simulation transport (helper sets
plus the shared routing hash).  :class:`SkeletonContext` packages that state
so it can be computed once and passed to any number of queries; the lazily
built pieces charge their rounds on first use under the phase the first
caller names and are free afterwards.

The entry points (:func:`repro.core.apsp.apsp_exact`,
:func:`repro.core.kssp.shortest_paths_via_clique`,
:func:`repro.core.sssp.sssp_exact`,
:func:`repro.core.diameter.approximate_diameter`,
:func:`repro.baselines.apsp_broadcast.apsp_broadcast_baseline`) accept an
optional prepared context; without one they build it inline with exactly the
calls, phases and RNG forks they issued before the extraction, so the cold
path is bit-identical.  :class:`repro.session.HybridSession` is the cache in
front of this module.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.core.clique_simulation import HybridCliqueTransport
from repro.core.skeleton import (
    Skeleton,
    compute_skeleton,
    local_distance_maps,
    skeleton_graph_from_limited,
)
from repro.core.token_routing import TokenRouter
from repro.graphs.graph import GraphDelta, WeightedGraph
from repro.graphs.skeleton_analysis import skeleton_hop_length
from repro.hybrid.errors import StaleContextError
from repro.hybrid.network import HybridNetwork
from repro.localnet.token_dissemination import disseminate_tokens

#: Fraction of exploration rows a delta batch may damage before
#: :meth:`SkeletonContext.repair` refuses and the owner rebuilds cold: past
#: this point the incremental path re-does most of the cold exploration's
#: work anyway, so the simpler full rebuild is preferred (DESIGN.md §12).
DEFAULT_DAMAGE_THRESHOLD = 0.5


def _estimated_damage(limited: np.ndarray, deltas: Sequence[GraphDelta]) -> np.ndarray:
    """Per-row estimate of which exploration rows a delta batch perturbs.

    The *decision* metric behind the damage threshold: a row ``s`` is counted
    as damaged when some mutated edge is plausibly on one of its ``d_h``
    shortest paths -- the edge is *tight* from ``s`` in the old matrix
    (``d_h(s,u) + w == d_h(s,v)`` either way round; removals and weight
    increases only matter on such rows) or the new weight creates an
    improving detour (``d_h(s,u) + w_new <= d_h(s,v)``; additions and weight
    decreases).  This is an estimate, not a certificate: correctness never
    depends on it, because :meth:`SkeletonContext.repair` *recomputes* the
    sound superset of rows (anything that can reach an endpoint within ``h``
    hops in the old or new topology).  At simulation scale that superset is
    usually "everyone" -- ``h`` rivals the diameter -- which would make a
    superset-based threshold refuse every repair; the tight estimate instead
    tracks how much of the published state actually moves (DESIGN.md §12).
    """
    damaged = np.zeros(limited.shape[0], dtype=bool)
    for delta in deltas:
        to_u = limited[:, delta.u]
        to_v = limited[:, delta.v]
        finite_u = np.isfinite(to_u)
        finite_v = np.isfinite(to_v)
        if delta.old_weight is not None:  # the edge existed: tightness test
            w = delta.old_weight
            damaged |= finite_u & (np.abs(to_u + w - to_v) < 1e-9)
            damaged |= finite_v & (np.abs(to_v + w - to_u) < 1e-9)
        if delta.weight is not None and (
            delta.old_weight is None or delta.weight < delta.old_weight
        ):  # the edge is new or got cheaper: improvement test
            w = delta.weight
            damaged |= finite_u & (to_u + w <= to_v)
            damaged |= finite_v & (to_v + w <= to_u)
    return damaged


def _changed_skeleton_edges(
    old_graph: WeightedGraph, new_graph: WeightedGraph
) -> list[tuple[int, int, int | None]]:
    """Skeleton edges (by skeleton index) whose weight changed, plus removals.

    Removed edges carry weight None -- the dissemination token is then a
    retraction.  Sorted for determinism.
    """
    old_edges = {(u, v): w for u, v, w in old_graph.edges()}
    new_edges = {(u, v): w for u, v, w in new_graph.edges()}
    changed: list[tuple[int, int, int | None]] = []
    for key in sorted(old_edges.keys() | new_edges.keys()):
        new_weight = new_edges.get(key)
        if old_edges.get(key) != new_weight:
            changed.append((key[0], key[1], new_weight))
    return changed


@dataclass
class SkeletonContext:
    """One skeleton plus the derived preprocessing state queries share.

    Attributes
    ----------
    network:
        The network the context was prepared on.
    skeleton:
        The constructed skeleton (with ``knowledge_matrix`` kept whenever the
        context is meant to serve more than one query kind).
    graph_version:
        :attr:`WeightedGraph.version` at construction time; a context whose
        version no longer matches the graph is stale (see :meth:`is_current`).
    skeleton_rounds:
        Rounds charged by the skeleton construction (shared by every query
        kind; an :meth:`extended` context inherits it -- the exploration is
        the same work).

    The lazy pieces -- the published skeleton distance matrix, the CLIQUE
    transport, the APSP token router -- are built on first request under the
    phase name the requesting query passes, charged once into their own
    counters (``publish_rounds`` / ``transport_rounds`` / ``router_rounds``),
    and cached.  Per-piece counters let the session charge a query's
    cold-equivalent accounting with exactly the pieces that query kind
    consumes (an SSSP query never pays for the APSP edge publication).
    """

    network: HybridNetwork
    skeleton: Skeleton
    graph_version: int
    skeleton_rounds: int
    publish_rounds: int = 0
    transport_rounds: int = 0
    router_rounds: int = 0
    #: Rounds charged by delta repairs that produced this context (summed
    #: across a repair chain).  Deliberately *not* part of the per-query
    #: cold-equivalent counters: a cold run never pays repair, so
    #: ``cold_rounds`` must not include it -- repair charges land in the
    #: owner's preprocessing ledger instead (DESIGN.md §12).
    repair_rounds: int = 0
    #: Stable name for phases charged by the lazy pieces when the *owner* of
    #: the context (rather than a query) realises them -- the session names
    #: contexts after their cache key so preparation phases are independent
    #: of which query arrives first.
    label: str = "skeleton-context"
    _skeleton_distances: np.ndarray | None = field(default=None, repr=False)
    _transport: HybridCliqueTransport | None = field(default=None, repr=False)
    _apsp_router: TokenRouter | None = field(default=None, repr=False)
    _extensions: dict[frozenset[int], "SkeletonContext"] = field(
        default_factory=dict, repr=False
    )

    # ----------------------------------------------------------------- status
    def is_current(self) -> bool:
        """Whether the underlying graph is unchanged since preparation."""
        return self.network.graph.version == self.graph_version

    @property
    def preparation_rounds(self) -> int:
        """Total rounds charged preparing this context (all pieces)."""
        return (
            self.skeleton_rounds
            + self.publish_rounds
            + self.transport_rounds
            + self.router_rounds
        )

    @property
    def apsp_preparation_rounds(self) -> int:
        """Preparation an APSP query consumes: skeleton + publication + router."""
        return self.skeleton_rounds + self.publish_rounds + self.router_rounds

    @property
    def simulation_preparation_rounds(self) -> int:
        """Preparation a CLIQUE-simulation query consumes: skeleton + transport."""
        return self.skeleton_rounds + self.transport_rounds

    # ------------------------------------------------------------ lazy pieces
    def published_skeleton_distances(self, phase: str) -> np.ndarray:
        """The all-pairs skeleton distance matrix after publishing ``E_S``.

        First call disseminates the skeleton edges (``Õ(|V_S|)`` rounds,
        charged under ``phase``) and solves APSP on the skeleton locally;
        later calls return the cached matrix for free -- every node already
        knows ``E_S``.
        """
        if self._skeleton_distances is None:
            rounds_before = self.network.metrics.total_rounds
            skeleton = self.skeleton
            edge_tokens: dict[int, list[tuple[int, int, int]]] = {}
            for u, v, w in skeleton.graph.edges():
                holder = skeleton.original_id(u)
                edge_tokens.setdefault(holder, []).append(
                    (skeleton.original_id(u), skeleton.original_id(v), w)
                )
            disseminate_tokens(self.network, edge_tokens, phase=phase)
            self._skeleton_distances = skeleton.graph.distance_matrix()
            self.publish_rounds += self.network.metrics.total_rounds - rounds_before
        return self._skeleton_distances

    def transport(self, phase: str) -> HybridCliqueTransport:
        """The CLIQUE-simulation transport for this skeleton (built once).

        Construction announces the skeleton membership and builds the helper
        sets and the shared routing hash of Corollary 4.1 -- all reusable
        across queries; only the per-round routing instances are paid per
        query.  Callers measuring CLIQUE rounds per query must diff
        ``transport.rounds_used`` around their simulation.
        """
        if self._transport is None:
            rounds_before = self.network.metrics.total_rounds
            self._transport = HybridCliqueTransport(self.network, self.skeleton, phase=phase)
            self.transport_rounds += self.network.metrics.total_rounds - rounds_before
        return self._transport

    def apsp_router(self, phase: str) -> TokenRouter:
        """The Theorem 1.1 token router (senders = V, receivers = V_S).

        The helper sets and the shared hash are a pure function of the
        endpoint populations, so one router serves every APSP query on this
        skeleton; its setup rounds are charged on first build only.
        """
        if self._apsp_router is None:
            rounds_before = self.network.metrics.total_rounds
            skeleton = self.skeleton
            self._apsp_router = TokenRouter(
                self.network,
                senders=list(range(self.network.n)),
                receivers=list(skeleton.nodes),
                max_tokens_per_sender=max(1, skeleton.size),
                max_tokens_per_receiver=self.network.n,
                phase=phase,
            )
            self.router_rounds += self.network.metrics.total_rounds - rounds_before
        return self._apsp_router

    # ----------------------------------------------------------------- repair
    def repair(
        self,
        deltas: Sequence[GraphDelta],
        *,
        damage_threshold: float = DEFAULT_DAMAGE_THRESHOLD,
    ) -> "SkeletonContext" | None:
        """Patch this context to the current graph, or None for a cold rebuild.

        Given the contiguous :class:`~repro.graphs.graph.GraphDelta` batch
        that carried the graph from this context's ``graph_version`` to the
        current one, re-runs the depth-``h`` exploration *only from the
        damaged sources* (rows of the kept ``knowledge_matrix`` that could
        see a mutated endpoint in the old or new topology), patches the
        matrix in a copy, rebuilds the skeleton graph and local distance
        maps from it, and -- when the skeleton edge publication had been
        materialised -- re-disseminates only the changed/retracted skeleton
        edges through the token-dissemination machinery.  On weight-only
        delta batches the CLIQUE transport and the APSP router survive:
        helper sets, the routing hash and the padding plan are functions of
        the hop topology, the skeleton membership and the RNG labels alone,
        so they are exactly what a cold rebuild would reconstruct.

        Determinism contract (DESIGN.md §12): skeleton sampling is a pure
        function of the seed and the phase label, so a cold rebuild after
        the mutation draws the *same* skeleton node set; every patched row
        equals the row a full re-exploration would produce (the batched
        kernels compute rows independently per source).  A repaired context
        is therefore bit-identical to a cold rebuild in its distance
        matrices, routing plans and RNG fork labels -- only the rounds paid
        to get there differ, and those are charged under
        ``<label>:repair:*`` phases and accumulated in ``repair_rounds``.

        Returns None -- leaving ``self`` untouched -- when repair is not
        worthwhile or not possible: the exploration outcome was not kept, a
        delta endpoint is a skeleton member, the cold build had doubled the
        exploration depth for connectivity, the estimated damage
        (:func:`_estimated_damage`, the fraction of rows whose published
        distances plausibly move) exceeds ``damage_threshold``, the delta
        log did not cover the version gap (empty batch), or the patched
        skeleton comes out disconnected (detected after the repair flood;
        those rounds are honestly kept).
        """
        network = self.network
        if self.is_current():
            return self
        if not deltas:
            return None
        base = self.skeleton
        limited = base.knowledge_matrix
        if limited is None:
            return None
        if any(delta.u in base.index_of or delta.v in base.index_of for delta in deltas):
            return None
        expected_hop_length = skeleton_hop_length(
            network.n,
            1.0 / base.sampling_probability,
            xi=network.config.skeleton_xi,
        )
        if base.hop_length != expected_hop_length:
            # The cold build doubled h until the skeleton connected; replaying
            # that search incrementally is not worth the complexity.
            return None
        if int(_estimated_damage(limited, deltas).sum()) > damage_threshold * network.n:
            return None
        # The rows actually recomputed are the sound superset: anything that
        # could reach a mutated endpoint within h hops, old or new topology.
        endpoints = sorted({node for delta in deltas for node in (delta.u, delta.v)})
        damaged = np.isfinite(limited[:, endpoints]).any(axis=1)
        local = network.local_graph
        for ball in local.balls_many(endpoints, base.hop_length):
            damaged[ball] = True
        sources = [int(source) for source in np.flatnonzero(damaged)]

        # The repair flood: the delta records propagate h hops so every
        # damaged source can re-derive its d_h row -- min(h, D) local rounds,
        # like the cold exploration, but none of the cold global phases.
        rounds_before = network.metrics.total_rounds
        network.charge_local_rounds(base.hop_length, phase=self.label + ":repair:exploration")
        patched = np.array(limited, copy=True)
        if sources:
            patched[sources] = local.hop_limited_distance_matrix(sources, base.hop_length)
        new_graph = skeleton_graph_from_limited(patched, base.nodes)
        if len(base.nodes) > 1 and not new_graph.is_connected():
            return None
        weight_only = all(not delta.topological for delta in deltas)
        skeleton = Skeleton(
            nodes=list(base.nodes),
            index_of=dict(base.index_of),
            graph=new_graph,
            hop_length=base.hop_length,
            sampling_probability=base.sampling_probability,
            local_distances=local_distance_maps(patched, base.nodes),
            rounds_charged=base.rounds_charged,
            knowledge_matrix=patched,
        )
        repaired = SkeletonContext(
            network=network,
            skeleton=skeleton,
            graph_version=network.graph.version,
            skeleton_rounds=self.skeleton_rounds,
            publish_rounds=self.publish_rounds,
            # On a topology delta the transport/router are dropped and their
            # counters restart: the lazy rebuild re-charges them exactly as a
            # cold context would.
            transport_rounds=self.transport_rounds if weight_only else 0,
            router_rounds=self.router_rounds if weight_only else 0,
            label=self.label,
        )
        if self._skeleton_distances is not None:
            changed = _changed_skeleton_edges(base.graph, new_graph)
            if changed:
                edge_tokens: dict[int, list[tuple[int, int, int | None]]] = {}
                for u, v, weight in changed:
                    holder = skeleton.original_id(u)
                    edge_tokens.setdefault(holder, []).append(
                        (skeleton.original_id(u), skeleton.original_id(v), weight)
                    )
                disseminate_tokens(network, edge_tokens, phase=self.label + ":repair:publish")
            repaired._skeleton_distances = new_graph.distance_matrix()
        if weight_only:
            repaired._transport = self._transport
            repaired._apsp_router = self._apsp_router
            if repaired._transport is not None:
                # The transport's exchange plan only reads skeleton membership
                # (unchanged); point it at the repaired skeleton so later
                # callers never see the stale edge weights through it.
                repaired._transport.skeleton = skeleton
        repaired.repair_rounds = self.repair_rounds + (
            network.metrics.total_rounds - rounds_before
        )
        return repaired

    # -------------------------------------------------------------- extension
    def extended(self, members: Sequence[int]) -> "SkeletonContext" | None:
        """A derived context whose skeleton additionally contains ``members``.

        Algorithm 6 adds a query's source to the skeleton deterministically
        (Lemma 4.5).  When the base context kept the full exploration outcome
        (``knowledge_matrix``), the enlarged skeleton's edges and per-node
        distance maps are already known at every node -- the depth-``h``
        exploration delivered ``d_h(v, u)`` for *all* ``u``, sampled or not --
        so the derived skeleton costs no additional rounds; only its identity
        still has to be announced, which the query's own phases cover.

        Returns None when the extension is not usable: the exploration was
        not kept, or the enlarged skeleton is disconnected at the base hop
        length (the caller then prepares a fresh context with the member
        forced in, exactly like a cold run).  Derived contexts are cached per
        member set and share the base exploration matrix.

        Raises :class:`~repro.hybrid.errors.StaleContextError` when the base
        is stale: a derived context copies ``graph_version`` from its base,
        so extending a stale base would mint a context that *looks* current
        while its distances describe a graph that no longer exists
        (DESIGN.md §12) -- the owner must repair or rebuild first.
        """
        for member in members:
            if not 0 <= member < self.network.n:
                raise ValueError(f"skeleton member {member} outside the network")
        if not self.is_current():
            raise StaleContextError(
                f"cannot extend a stale context: graph at version "
                f"{self.network.graph.version}, context built at {self.graph_version}"
            )
        extra = frozenset(members) - frozenset(self.skeleton.nodes)
        if not extra:
            return self
        if self.skeleton.knowledge_matrix is None:
            return None
        cached = self._extensions.get(extra)
        if cached is not None:
            return cached

        base = self.skeleton
        limited = base.knowledge_matrix
        nodes = sorted(set(base.nodes) | extra)
        index_of = {node: index for index, node in enumerate(nodes)}
        skeleton_graph = skeleton_graph_from_limited(limited, nodes)
        if len(nodes) > 1 and not skeleton_graph.is_connected():
            return None

        local_distances = local_distance_maps(limited, nodes)
        skeleton = Skeleton(
            nodes=nodes,
            index_of=index_of,
            graph=skeleton_graph,
            hop_length=base.hop_length,
            sampling_probability=base.sampling_probability,
            local_distances=local_distances,
            rounds_charged=0,
            knowledge_matrix=limited,
        )
        derived = SkeletonContext(
            network=self.network,
            skeleton=skeleton,
            graph_version=self.graph_version,
            skeleton_rounds=self.skeleton_rounds,
            label=self.label + "+" + ",".join(str(node) for node in sorted(extra)),
        )
        self._extensions[extra] = derived
        return derived


def prepare_skeleton_context(
    network: HybridNetwork,
    sampling_probability: float,
    forced_members: Sequence[int] = (),
    phase: str = "skeleton",
    ensure_connected: bool = True,
    keep_local_knowledge: bool = True,
    label: str | None = None,
) -> SkeletonContext:
    """Run the shared preprocessing prologue: one skeleton, wrapped for reuse.

    Calls :func:`~repro.core.skeleton.compute_skeleton` with exactly the
    given phase (so a cold entry point that prepares its context inline
    forks the same RNG labels and charges the same phases as the
    pre-extraction code did) and records the rounds as the context's
    preparation cost.
    """
    rounds_before = network.metrics.total_rounds
    skeleton = compute_skeleton(
        network,
        sampling_probability,
        forced_members=forced_members,
        phase=phase,
        ensure_connected=ensure_connected,
        keep_local_knowledge=keep_local_knowledge,
    )
    return SkeletonContext(
        network=network,
        skeleton=skeleton,
        graph_version=network.graph.version,
        skeleton_rounds=network.metrics.total_rounds - rounds_before,
        label=phase if label is None else label,
    )
