"""Prepared skeleton state shared between shortest-path queries.

Every algorithm of the paper pays the same ``Õ(√n)``-shaped preprocessing
before it answers anything: build a skeleton (Algorithm 6), optionally make
its edge set public knowledge (token dissemination) and solve APSP on it
locally, and optionally stand up the CLIQUE-simulation transport (helper sets
plus the shared routing hash).  :class:`SkeletonContext` packages that state
so it can be computed once and passed to any number of queries; the lazily
built pieces charge their rounds on first use under the phase the first
caller names and are free afterwards.

The entry points (:func:`repro.core.apsp.apsp_exact`,
:func:`repro.core.kssp.shortest_paths_via_clique`,
:func:`repro.core.sssp.sssp_exact`,
:func:`repro.core.diameter.approximate_diameter`,
:func:`repro.baselines.apsp_broadcast.apsp_broadcast_baseline`) accept an
optional prepared context; without one they build it inline with exactly the
calls, phases and RNG forks they issued before the extraction, so the cold
path is bit-identical.  :class:`repro.session.HybridSession` is the cache in
front of this module.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.core.clique_simulation import HybridCliqueTransport
from repro.core.skeleton import (
    Skeleton,
    compute_skeleton,
    local_distance_maps,
    skeleton_graph_from_limited,
)
from repro.core.token_routing import TokenRouter
from repro.hybrid.network import HybridNetwork
from repro.localnet.token_dissemination import disseminate_tokens


@dataclass
class SkeletonContext:
    """One skeleton plus the derived preprocessing state queries share.

    Attributes
    ----------
    network:
        The network the context was prepared on.
    skeleton:
        The constructed skeleton (with ``knowledge_matrix`` kept whenever the
        context is meant to serve more than one query kind).
    graph_version:
        :attr:`WeightedGraph.version` at construction time; a context whose
        version no longer matches the graph is stale (see :meth:`is_current`).
    skeleton_rounds:
        Rounds charged by the skeleton construction (shared by every query
        kind; an :meth:`extended` context inherits it -- the exploration is
        the same work).

    The lazy pieces -- the published skeleton distance matrix, the CLIQUE
    transport, the APSP token router -- are built on first request under the
    phase name the requesting query passes, charged once into their own
    counters (``publish_rounds`` / ``transport_rounds`` / ``router_rounds``),
    and cached.  Per-piece counters let the session charge a query's
    cold-equivalent accounting with exactly the pieces that query kind
    consumes (an SSSP query never pays for the APSP edge publication).
    """

    network: HybridNetwork
    skeleton: Skeleton
    graph_version: int
    skeleton_rounds: int
    publish_rounds: int = 0
    transport_rounds: int = 0
    router_rounds: int = 0
    #: Stable name for phases charged by the lazy pieces when the *owner* of
    #: the context (rather than a query) realises them -- the session names
    #: contexts after their cache key so preparation phases are independent
    #: of which query arrives first.
    label: str = "skeleton-context"
    _skeleton_distances: np.ndarray | None = field(default=None, repr=False)
    _transport: HybridCliqueTransport | None = field(default=None, repr=False)
    _apsp_router: TokenRouter | None = field(default=None, repr=False)
    _extensions: dict[frozenset[int], "SkeletonContext"] = field(
        default_factory=dict, repr=False
    )

    # ----------------------------------------------------------------- status
    def is_current(self) -> bool:
        """Whether the underlying graph is unchanged since preparation."""
        return self.network.graph.version == self.graph_version

    @property
    def preparation_rounds(self) -> int:
        """Total rounds charged preparing this context (all pieces)."""
        return (
            self.skeleton_rounds
            + self.publish_rounds
            + self.transport_rounds
            + self.router_rounds
        )

    @property
    def apsp_preparation_rounds(self) -> int:
        """Preparation an APSP query consumes: skeleton + publication + router."""
        return self.skeleton_rounds + self.publish_rounds + self.router_rounds

    @property
    def simulation_preparation_rounds(self) -> int:
        """Preparation a CLIQUE-simulation query consumes: skeleton + transport."""
        return self.skeleton_rounds + self.transport_rounds

    # ------------------------------------------------------------ lazy pieces
    def published_skeleton_distances(self, phase: str) -> np.ndarray:
        """The all-pairs skeleton distance matrix after publishing ``E_S``.

        First call disseminates the skeleton edges (``Õ(|V_S|)`` rounds,
        charged under ``phase``) and solves APSP on the skeleton locally;
        later calls return the cached matrix for free -- every node already
        knows ``E_S``.
        """
        if self._skeleton_distances is None:
            rounds_before = self.network.metrics.total_rounds
            skeleton = self.skeleton
            edge_tokens: dict[int, list[tuple[int, int, int]]] = {}
            for u, v, w in skeleton.graph.edges():
                holder = skeleton.original_id(u)
                edge_tokens.setdefault(holder, []).append(
                    (skeleton.original_id(u), skeleton.original_id(v), w)
                )
            disseminate_tokens(self.network, edge_tokens, phase=phase)
            self._skeleton_distances = skeleton.graph.distance_matrix()
            self.publish_rounds += self.network.metrics.total_rounds - rounds_before
        return self._skeleton_distances

    def transport(self, phase: str) -> HybridCliqueTransport:
        """The CLIQUE-simulation transport for this skeleton (built once).

        Construction announces the skeleton membership and builds the helper
        sets and the shared routing hash of Corollary 4.1 -- all reusable
        across queries; only the per-round routing instances are paid per
        query.  Callers measuring CLIQUE rounds per query must diff
        ``transport.rounds_used`` around their simulation.
        """
        if self._transport is None:
            rounds_before = self.network.metrics.total_rounds
            self._transport = HybridCliqueTransport(self.network, self.skeleton, phase=phase)
            self.transport_rounds += self.network.metrics.total_rounds - rounds_before
        return self._transport

    def apsp_router(self, phase: str) -> TokenRouter:
        """The Theorem 1.1 token router (senders = V, receivers = V_S).

        The helper sets and the shared hash are a pure function of the
        endpoint populations, so one router serves every APSP query on this
        skeleton; its setup rounds are charged on first build only.
        """
        if self._apsp_router is None:
            rounds_before = self.network.metrics.total_rounds
            skeleton = self.skeleton
            self._apsp_router = TokenRouter(
                self.network,
                senders=list(range(self.network.n)),
                receivers=list(skeleton.nodes),
                max_tokens_per_sender=max(1, skeleton.size),
                max_tokens_per_receiver=self.network.n,
                phase=phase,
            )
            self.router_rounds += self.network.metrics.total_rounds - rounds_before
        return self._apsp_router

    # -------------------------------------------------------------- extension
    def extended(self, members: Sequence[int]) -> "SkeletonContext" | None:
        """A derived context whose skeleton additionally contains ``members``.

        Algorithm 6 adds a query's source to the skeleton deterministically
        (Lemma 4.5).  When the base context kept the full exploration outcome
        (``knowledge_matrix``), the enlarged skeleton's edges and per-node
        distance maps are already known at every node -- the depth-``h``
        exploration delivered ``d_h(v, u)`` for *all* ``u``, sampled or not --
        so the derived skeleton costs no additional rounds; only its identity
        still has to be announced, which the query's own phases cover.

        Returns None when the extension is not usable: the exploration was
        not kept, or the enlarged skeleton is disconnected at the base hop
        length (the caller then prepares a fresh context with the member
        forced in, exactly like a cold run).  Derived contexts are cached per
        member set and share the base exploration matrix.
        """
        for member in members:
            if not 0 <= member < self.network.n:
                raise ValueError(f"skeleton member {member} outside the network")
        extra = frozenset(members) - frozenset(self.skeleton.nodes)
        if not extra:
            return self
        if self.skeleton.knowledge_matrix is None:
            return None
        cached = self._extensions.get(extra)
        if cached is not None:
            return cached

        base = self.skeleton
        limited = base.knowledge_matrix
        nodes = sorted(set(base.nodes) | extra)
        index_of = {node: index for index, node in enumerate(nodes)}
        skeleton_graph = skeleton_graph_from_limited(limited, nodes)
        if len(nodes) > 1 and not skeleton_graph.is_connected():
            return None

        local_distances = local_distance_maps(limited, nodes)
        skeleton = Skeleton(
            nodes=nodes,
            index_of=index_of,
            graph=skeleton_graph,
            hop_length=base.hop_length,
            sampling_probability=base.sampling_probability,
            local_distances=local_distances,
            rounds_charged=0,
            knowledge_matrix=limited,
        )
        derived = SkeletonContext(
            network=self.network,
            skeleton=skeleton,
            graph_version=self.graph_version,
            skeleton_rounds=self.skeleton_rounds,
            label=self.label + "+" + ",".join(str(node) for node in sorted(extra)),
        )
        self._extensions[extra] = derived
        return derived


def prepare_skeleton_context(
    network: HybridNetwork,
    sampling_probability: float,
    forced_members: Sequence[int] = (),
    phase: str = "skeleton",
    ensure_connected: bool = True,
    keep_local_knowledge: bool = True,
    label: str | None = None,
) -> SkeletonContext:
    """Run the shared preprocessing prologue: one skeleton, wrapped for reuse.

    Calls :func:`~repro.core.skeleton.compute_skeleton` with exactly the
    given phase (so a cold entry point that prepares its context inline
    forks the same RNG labels and charges the same phases as the
    pre-extraction code did) and records the rounds as the context's
    preparation cost.
    """
    rounds_before = network.metrics.total_rounds
    skeleton = compute_skeleton(
        network,
        sampling_probability,
        forced_members=forced_members,
        phase=phase,
        ensure_connected=ensure_connected,
        keep_local_knowledge=keep_local_knowledge,
    )
    return SkeletonContext(
        network=network,
        skeleton=skeleton,
        graph_version=network.graph.version,
        skeleton_rounds=network.metrics.total_rounds - rounds_before,
        label=phase if label is None else label,
    )
