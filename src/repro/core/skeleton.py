"""Distributed skeleton-graph construction (Algorithm 6, Lemmas C.1 / C.2).

A skeleton graph ``S = (V_S, E_S)`` is obtained by sampling every node of the
local graph ``G`` with probability ``1/x`` and connecting sampled nodes that
are within ``h ∈ Θ(x log n)`` hops of each other with an edge weighted by
their ``h``-hop-limited distance.  W.h.p. the skeleton is connected, preserves
exact distances between sampled nodes (Lemma C.2) and, on every long shortest
path of ``G``, a sampled node appears at least every ``h`` hops (Lemma C.1).

The construction costs ``Õ(x)`` local rounds: sampled nodes learn their
skeleton neighbourhood by flooding graph information to depth ``h``, and every
node simultaneously learns its ``h``-limited distances to the nearby skeleton
nodes (which is all later phases need from it).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.graphs.graph import WeightedGraph
from repro.graphs.skeleton_analysis import skeleton_hop_length
from repro.hybrid.network import HybridNetwork
from repro.localnet.flooding import explore_limited_distance_matrix
from repro.util.rand import RandomSource, sample_nodes


@dataclass
class Skeleton:
    """A constructed skeleton graph plus the per-node local knowledge about it.

    Attributes
    ----------
    nodes:
        The sampled node IDs ``V_S`` (original graph IDs, sorted).
    index_of:
        Mapping original node ID -> index in the relabelled skeleton graph.
    graph:
        The skeleton ``S`` itself on nodes ``0..|V_S|-1`` with ``d_h`` weights.
    hop_length:
        The parameter ``h``: maximum hop length of a skeleton edge.
    sampling_probability:
        The probability each node was sampled with.
    local_distances:
        For every original node ``v``: ``{skeleton node s (original ID): d_h(v, s)}``
        restricted to skeleton nodes within ``h`` hops -- exactly what ``v``
        learns from the local exploration of Algorithm 6.
    knowledge_matrix:
        When requested (``keep_local_knowledge=True``), the full outcome of
        the depth-``h`` exploration in dense form, ``M[v, u] = d_h(v, u)``
        (``inf`` outside the ball).  The exact APSP algorithm of Section 3
        needs this for its final combination step.
    rounds_charged:
        Rounds consumed by the construction.

    The dict view of the exploration outcome (one ``{other: d_h(v, other)}``
    per node) remains available as :attr:`local_knowledge`, densified lazily
    from ``knowledge_matrix`` on first access.
    """

    nodes: list[int]
    index_of: dict[int, int]
    graph: WeightedGraph
    hop_length: int
    sampling_probability: float
    local_distances: list[dict[int, float]]
    rounds_charged: int
    knowledge_matrix: np.ndarray | None = None
    _knowledge_dicts: list[dict[int, float]] | None = field(
        default=None, repr=False, compare=False
    )

    @property
    def local_knowledge(self) -> list[dict[int, float]] | None:
        """Dict view of the depth-``h`` exploration (None unless kept)."""
        if self.knowledge_matrix is None:
            return None
        if self._knowledge_dicts is None:
            dicts: list[dict[int, float]] = []
            for row in self.knowledge_matrix:
                reached = np.flatnonzero(np.isfinite(row))
                dicts.append(dict(zip(reached.tolist(), row[reached].tolist(), strict=True)))
            self._knowledge_dicts = dicts
        return self._knowledge_dicts

    @property
    def size(self) -> int:
        """``|V_S|``."""
        return len(self.nodes)

    def contains(self, node: int) -> bool:
        """Whether the original node ``node`` was sampled into ``V_S``."""
        return node in self.index_of

    def original_id(self, index: int) -> int:
        """The original graph ID of skeleton index ``index``."""
        return self.nodes[index]

    def incident_edges(self) -> list[dict[int, int]]:
        """Per skeleton index, its incident skeleton edges ``{neighbour_index: weight}``.

        This is the *local input* each skeleton node feeds into a simulated
        CLIQUE algorithm (it knows only its own incident edges, Fact 4.3).
        """
        edges: list[dict[int, int]] = [dict() for _ in range(self.graph.node_count)]
        for u, v, w in self.graph.edges():
            edges[u][v] = w
            edges[v][u] = w
        return edges

    def closest_skeleton_node(self, node: int) -> int | None:
        """The skeleton node minimising ``d_h(node, ·)`` (None if none within ``h`` hops)."""
        known = self.local_distances[node]
        if not known:
            return None
        return min(known, key=lambda s: (known[s], s))


def compute_skeleton(
    network: HybridNetwork,
    sampling_probability: float,
    forced_members: Sequence[int] = (),
    phase: str = "skeleton",
    rng: RandomSource | None = None,
    ensure_nonempty: bool = True,
    ensure_connected: bool = False,
    keep_local_knowledge: bool = False,
) -> Skeleton:
    """Run Algorithm 6 (``Compute-Skeleton``) on the network.

    Parameters
    ----------
    sampling_probability:
        Each node joins ``V_S`` independently with this probability
        (``1/n^{1-x}`` in the framework of Section 4).
    forced_members:
        Nodes added to ``V_S`` deterministically -- Algorithm 6 adds the source
        when the simulated CLIQUE algorithm is an SSSP algorithm (``γ = 0``).
    ensure_nonempty:
        At simulation scale the random sample can come out empty; when True,
        node 0 is drafted so downstream phases always have a skeleton to work
        with (the asymptotic statements are unaffected).
    ensure_connected:
        Lemma C.2 guarantees a connected skeleton w.h.p. for the asymptotic
        choice of ``h``; at simulation scale the constant-factor choice of
        ``ξ`` can occasionally produce a disconnected skeleton.  When True the
        exploration depth is doubled (and re-charged) until the skeleton is
        connected, which keeps small instances correct without affecting the
        measured asymptotic shape.
    keep_local_knowledge:
        Retain every node's full ``h``-limited distance map (needed by the
        exact APSP algorithm of Section 3 and by Equation (1)).
    """
    if not 0 < sampling_probability <= 1:
        raise ValueError("sampling_probability must be in (0, 1]")
    rng = rng or network.fork_rng(phase + ":sampling")
    rounds_before = network.metrics.total_rounds

    sampled = set(sample_nodes(network.graph.nodes(), sampling_probability, rng))
    sampled.update(forced_members)
    if not sampled and ensure_nonempty:
        sampled.add(0)
    nodes = sorted(sampled)
    index_of = {node: index for index, node in enumerate(nodes)}

    denominator = 1.0 / sampling_probability
    hop_length = skeleton_hop_length(network.n, denominator, xi=network.config.skeleton_xi)

    node_array = np.asarray(nodes, dtype=np.int64)
    while True:
        # Local exploration to depth h: every node learns its h-limited
        # distances; skeleton nodes in particular learn their incident
        # skeleton edges.  The exploration is one batched kernel call over all
        # n sources; a connectivity retry re-runs (and conservatively
        # re-charges) it at the doubled depth.
        limited = explore_limited_distance_matrix(network, hop_length, phase=phase + ":exploration")
        skeleton_graph = skeleton_graph_from_limited(limited, nodes)
        connected = len(nodes) <= 1 or skeleton_graph.is_connected()
        if connected or not ensure_connected or hop_length >= network.n:
            break
        hop_length = min(network.n, 2 * hop_length)

    # Per node, the d_h map restricted to nearby skeleton nodes (what the
    # exploration of Algorithm 6 leaves behind at every node).
    local_distances = local_distance_maps(limited, nodes)

    rounds_charged = network.metrics.total_rounds - rounds_before
    return Skeleton(
        nodes=nodes,
        index_of=index_of,
        graph=skeleton_graph,
        hop_length=hop_length,
        sampling_probability=sampling_probability,
        local_distances=local_distances,
        rounds_charged=rounds_charged,
        knowledge_matrix=limited if keep_local_knowledge else None,
    )


def skeleton_graph_from_limited(limited: np.ndarray, nodes: Sequence[int]) -> WeightedGraph:
    """The skeleton graph induced by an exploration outcome on ``nodes``.

    ``limited`` is a depth-``h`` exploration matrix (``limited[v, u] = d_h``,
    ``inf`` outside the ball); sampled nodes within each other's ball are
    connected by an edge weighted ``max(1, round(d_h))``.  Shared by
    :func:`compute_skeleton` and :meth:`SkeletonContext.extended
    <repro.core.context.SkeletonContext.extended>` so the two paths can never
    diverge.
    """
    node_array = np.asarray(nodes, dtype=np.int64)
    skeleton_graph = WeightedGraph(max(1, len(nodes)))
    if len(nodes) > 1:
        pairwise = limited[np.ix_(node_array, node_array)]
        edge_u, edge_v = np.nonzero(np.isfinite(pairwise))
        edge_w = pairwise[edge_u, edge_v]
        for u, v, distance in zip(edge_u.tolist(), edge_v.tolist(), edge_w.tolist(), strict=True):
            if u < v:
                skeleton_graph.add_edge(u, v, max(1, int(round(distance))))
    return skeleton_graph


def local_distance_maps(limited: np.ndarray, nodes: Sequence[int]) -> list[dict[int, float]]:
    """Per node, the ``d_h`` map restricted to the skeleton nodes ``nodes``."""
    node_array = np.asarray(nodes, dtype=np.int64)
    near = limited[:, node_array] if len(nodes) else limited[:, :0]
    local_distances: list[dict[int, float]] = []
    for row in near:
        reached = np.flatnonzero(np.isfinite(row))
        values = row[reached]
        local_distances.append(
            {nodes[i]: float(value) for i, value in zip(reached.tolist(), values.tolist(), strict=True)}
        )
    return local_distances


def framework_exponent(delta: float) -> float:
    """The skeleton-size exponent ``x = 2 / (3 + 2δ)`` of Theorems 4.1 and 5.1."""
    if delta < 0:
        raise ValueError("delta must be non-negative")
    return 2.0 / (3.0 + 2.0 * delta)


def framework_sampling_probability(n: int, delta: float) -> float:
    """The sampling probability ``1 / n^{1-x}`` used by Algorithms 5 and 9."""
    x = framework_exponent(delta)
    if n < 2:
        return 1.0
    return min(1.0, n ** (x - 1.0))
