"""Simulating the CLIQUE model on a skeleton of a HYBRID network (Corollary 4.1).

Corollary 4.1: if ``S ⊆ V`` is obtained by sampling every node with
probability ``1/n^{1-x}``, one CLIQUE round on ``S`` can be simulated in
``Õ(n^{2x-1} + n^{x/2})`` HYBRID rounds.  The simulation is a direct
application of token routing: in a CLIQUE round every node of ``S`` sends and
receives at most ``|S|`` messages, which is exactly a token-routing instance
with senders = receivers = ``S`` and ``k_S = k_R = |S|``.

:class:`HybridCliqueTransport` implements the
:class:`~repro.clique.interfaces.CliqueTransport` protocol on top of a
:class:`~repro.core.token_routing.TokenRouter`, so any CLIQUE algorithm from
:mod:`repro.clique` can be executed unchanged inside a HYBRID network.
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

from repro.core.skeleton import Skeleton
from repro.core.token_routing import RoutingToken, TokenRouter
from repro.hybrid.network import HybridNetwork
from repro.localnet.token_dissemination import disseminate_tokens


class HybridCliqueTransport:
    """A CLIQUE round transport backed by token routing on a HYBRID network.

    Construction makes the skeleton membership public knowledge (one token
    dissemination of ``|S|`` IDs, ``Õ(√|S|)`` rounds -- every simulated node
    must know whom it may receive messages from) and builds the helper sets
    used by every subsequent routing instance once.
    """

    def __init__(self, network: HybridNetwork, skeleton: Skeleton, phase: str = "clique-simulation") -> None:
        if skeleton.size < 1:
            raise ValueError("cannot simulate a CLIQUE on an empty skeleton")
        self.network = network
        self.skeleton = skeleton
        self.phase = phase
        self.size = skeleton.size
        self._rounds = 0

        disseminate_tokens(
            network,
            {node: [("skeleton-member", node)] for node in skeleton.nodes},
            phase=phase + ":announce-members",
        )
        self.router = TokenRouter(
            network,
            senders=skeleton.nodes,
            receivers=skeleton.nodes,
            max_tokens_per_sender=skeleton.size,
            max_tokens_per_receiver=skeleton.size,
            phase=phase + ":routing",
        )

    @property
    def rounds_used(self) -> int:
        """Number of CLIQUE rounds simulated so far."""
        return self._rounds

    def exchange(
        self, outboxes: Dict[int, List[Tuple[int, object]]]
    ) -> Dict[int, List[Tuple[int, object]]]:
        """Simulate one CLIQUE round among the skeleton nodes.

        ``outboxes`` use *skeleton indices* (``0..|S|-1``), as do the returned
        inboxes.  Every ordered pair of skeleton nodes exchanges exactly one
        token per round (pairs without an algorithm message carry a padding
        token), matching the proof of Corollary 4.1 where each node is sender
        and receiver of exactly ``|S|`` messages and therefore knows the label
        set it expects.
        """
        payloads: Dict[Tuple[int, int], List[object]] = {}
        for sender_index, messages in outboxes.items():
            if not 0 <= sender_index < self.size:
                raise ValueError(f"sender index {sender_index} outside the skeleton")
            for target_index, payload in messages:
                if not 0 <= target_index < self.size:
                    raise ValueError(f"target index {target_index} outside the skeleton")
                payloads.setdefault((sender_index, target_index), []).append(payload)

        tokens: List[RoutingToken] = []
        for sender_index in range(self.size):
            sender = self.skeleton.original_id(sender_index)
            for target_index in range(self.size):
                target = self.skeleton.original_id(target_index)
                contents = payloads.get((sender_index, target_index), [None])
                for position, payload in enumerate(contents):
                    tokens.append(
                        RoutingToken(
                            sender=sender,
                            receiver=target,
                            index=position,
                            payload=(sender_index, payload),
                        )
                    )

        result = self.router.route(tokens)
        self._rounds += 1

        inboxes: Dict[int, List[Tuple[int, object]]] = {}
        for receiver, delivered in result.delivered.items():
            receiver_index = self.skeleton.index_of[receiver]
            for token in delivered:
                sender_index, payload = token.payload
                if payload is None:
                    continue
                inboxes.setdefault(receiver_index, []).append((sender_index, payload))
        return inboxes


def predicted_simulation_rounds(n: int, skeleton_size: int) -> float:
    """The Corollary 4.1 bound ``|S|^2/n + √|S|`` per CLIQUE round (no polylogs)."""
    return skeleton_size * skeleton_size / max(n, 1) + math.sqrt(max(skeleton_size, 0))
