"""Simulating the CLIQUE model on a skeleton of a HYBRID network (Corollary 4.1).

Corollary 4.1: if ``S ⊆ V`` is obtained by sampling every node with
probability ``1/n^{1-x}``, one CLIQUE round on ``S`` can be simulated in
``Õ(n^{2x-1} + n^{x/2})`` HYBRID rounds.  The simulation is a direct
application of token routing: in a CLIQUE round every node of ``S`` sends and
receives at most ``|S|`` messages, which is exactly a token-routing instance
with senders = receivers = ``S`` and ``k_S = k_R = |S|``.

:class:`HybridCliqueTransport` implements the
:class:`~repro.clique.interfaces.CliqueTransport` protocol on top of a
:class:`~repro.core.token_routing.TokenRouter`, so any CLIQUE algorithm from
:mod:`repro.clique` can be executed unchanged inside a HYBRID network.
"""

from __future__ import annotations

import math

from repro.core.skeleton import Skeleton
from repro.core.token_routing import RoutingToken, TokenRouter
from repro.hybrid.network import HybridNetwork
from repro.localnet.token_dissemination import disseminate_tokens


class HybridCliqueTransport:
    """A CLIQUE round transport backed by token routing on a HYBRID network.

    Construction makes the skeleton membership public knowledge (one token
    dissemination of ``|S|`` IDs, ``Õ(√|S|)`` rounds -- every simulated node
    must know whom it may receive messages from) and builds the helper sets
    used by every subsequent routing instance once.
    """

    def __init__(
        self, network: HybridNetwork, skeleton: Skeleton, phase: str = "clique-simulation"
    ) -> None:
        if skeleton.size < 1:
            raise ValueError("cannot simulate a CLIQUE on an empty skeleton")
        self.network = network
        self.skeleton = skeleton
        self.phase = phase
        self.size = skeleton.size
        self._rounds = 0

        disseminate_tokens(
            network,
            {node: [("skeleton-member", node)] for node in skeleton.nodes},
            phase=phase + ":announce-members",
        )
        self.router = TokenRouter(
            network,
            senders=skeleton.nodes,
            receivers=skeleton.nodes,
            max_tokens_per_sender=skeleton.size,
            max_tokens_per_receiver=skeleton.size,
            phase=phase + ":routing",
        )
        # Every CLIQUE round routes one token per ordered node pair; pairs
        # without an algorithm message carry a padding token.  The tokens are
        # immutable, so the all-padding token list (one per pair, index 0) is
        # built once and reused -- a round only constructs tokens for the
        # pairs that actually carry payloads.
        original_ids = [skeleton.original_id(index) for index in range(self.size)]
        self._original_ids = original_ids
        self._padding_tokens = [
            RoutingToken(
                sender=original_ids[sender_index],
                receiver=original_ids[target_index],
                index=0,
                payload=(sender_index, None),
            )
            for sender_index in range(self.size)
            for target_index in range(self.size)
        ]
        # The routing plan (hashes, helper assignment) depends only on the
        # token labels, which a padding-only round repeats exactly; compute it
        # once, like the paper's one-time hash agreement.
        self._padding_plan = self.router.plan(self._padding_tokens)

    @property
    def rounds_used(self) -> int:
        """Number of CLIQUE rounds simulated so far."""
        return self._rounds

    def exchange(
        self, outboxes: dict[int, list[tuple[int, object]]]
    ) -> dict[int, list[tuple[int, object]]]:
        """Simulate one CLIQUE round among the skeleton nodes.

        ``outboxes`` use *skeleton indices* (``0..|S|-1``), as do the returned
        inboxes.  Every ordered pair of skeleton nodes exchanges exactly one
        token per round (pairs without an algorithm message carry a padding
        token), matching the proof of Corollary 4.1 where each node is sender
        and receiver of exactly ``|S|`` messages and therefore knows the label
        set it expects.
        """
        payloads: dict[tuple[int, int], list[object]] = {}
        for sender_index, messages in outboxes.items():
            if not 0 <= sender_index < self.size:
                raise ValueError(f"sender index {sender_index} outside the skeleton")
            for target_index, payload in messages:
                if not 0 <= target_index < self.size:
                    raise ValueError(f"target index {target_index} outside the skeleton")
                payloads.setdefault((sender_index, target_index), []).append(payload)

        original_ids = self._original_ids
        tokens: list[RoutingToken] = self._padding_tokens
        plan = self._padding_plan
        if payloads:
            tokens = list(tokens)
            plan = None
            size = self.size
            for (sender_index, target_index), contents in payloads.items():
                sender = original_ids[sender_index]
                receiver = original_ids[target_index]
                pair_tokens = [
                    RoutingToken(
                        sender=sender,
                        receiver=receiver,
                        index=position,
                        payload=(sender_index, payload),
                    )
                    for position, payload in enumerate(contents)
                ]
                tokens[sender_index * size + target_index] = pair_tokens[0]
                tokens.extend(pair_tokens[1:])

        result = self.router.route(tokens, plan=plan)
        self._rounds += 1

        inboxes: dict[int, list[tuple[int, object]]] = {}
        for receiver, delivered in result.delivered.items():
            receiver_index = self.skeleton.index_of[receiver]
            for token in delivered:
                sender_index, payload = token.payload
                if payload is None:
                    continue
                inboxes.setdefault(receiver_index, []).append((sender_index, payload))
        return inboxes


def predicted_simulation_rounds(n: int, skeleton_size: int) -> float:
    """The Corollary 4.1 bound ``|S|^2/n + √|S|`` per CLIQUE round (no polylogs)."""
    return skeleton_size * skeleton_size / max(n, 1) + math.sqrt(max(skeleton_size, 0))
