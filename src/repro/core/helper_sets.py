"""Helper sets (Definition 2.1, Algorithm 1, Lemma 2.2).

A family of helper sets assigns every node ``w`` of a well-spread set ``W``
(e.g. the senders or receivers of a token-routing instance) a set ``H_w`` of
nearby nodes so that

1. ``|H_w| ≥ µ`` for ``µ ∈ Θ(min(√k, n/|W|))``,
2. every helper is within ``Õ(µ)`` hops of ``w``, and
3. no node helps more than ``Õ(1)`` members of ``W``.

The construction (Algorithm 1) computes a ``(2µ+1, 2µ⌈log n⌉)``-ruling set,
clusters every node around its closest ruler, and then lets each cluster
member join ``H_w`` for each ``w ∈ W`` in its cluster independently with
probability ``q = min(2µ/|C|, 1)``.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass

from repro.hybrid.network import HybridNetwork
from repro.localnet.clustering import Clustering, cluster_around_rulers
from repro.localnet.ruling_set import compute_ruling_set
from repro.util.rand import RandomSource


@dataclass
class HelperSets:
    """A family of helper sets for the member set ``W`` (Definition 2.1).

    Attributes
    ----------
    members:
        The set ``W`` the helpers were computed for.
    mu:
        The size/radius parameter ``µ`` of Definition 2.1.
    helpers:
        ``w -> sorted list of helper nodes`` for every ``w ∈ W``.
    clustering:
        The ruler clustering the construction is based on (exposes the hop
        radius that bounds property (2)).
    rounds_charged:
        Rounds consumed by Algorithm 1 (ruling set + the exploration loops).
    """

    members: list[int]
    mu: int
    helpers: dict[int, list[int]]
    clustering: Clustering
    rounds_charged: int

    def min_helper_count(self) -> int:
        """Smallest ``|H_w|`` over all members (property (1) wants ``≥ µ``)."""
        if not self.helpers:
            return 0
        return min(len(h) for h in self.helpers.values())

    def max_membership_load(self) -> int:
        """Largest number of helper sets any single node belongs to (property (3))."""
        load: dict[int, int] = {}
        for helper_nodes in self.helpers.values():
            for node in helper_nodes:
                load[node] = load.get(node, 0) + 1
        return max(load.values()) if load else 0

    def max_helper_radius(self, network: HybridNetwork) -> int:
        """Largest hop distance between a member and one of its helpers (property (2))."""
        worst = 0
        members = [member for member, helper_nodes in self.helpers.items() if helper_nodes]
        all_hops = network.local_graph.bfs_hops_many(members)
        for member, hops in zip(members, all_hops, strict=True):
            for helper in self.helpers[member]:
                worst = max(worst, int(hops.get(helper, network.n)))
        return worst


def helper_parameter(n: int, member_count: int, tokens_per_member: int) -> int:
    """The ``µ = ⌊min(√k, n/|W|)⌋`` of Lemma 2.2 (clamped to ``≥ 1``)."""
    if member_count <= 0:
        return 1
    bound_by_tokens = math.isqrt(max(tokens_per_member, 1))
    bound_by_density = max(1, n // member_count)
    return max(1, min(bound_by_tokens, bound_by_density))


def compute_helper_sets(
    network: HybridNetwork,
    members: Sequence[int],
    tokens_per_member: int,
    phase: str = "helper-sets",
    rng: RandomSource | None = None,
) -> HelperSets:
    """Run Algorithm 1 (``Compute-Helpers``) for the member set ``W``.

    Parameters
    ----------
    network:
        The HYBRID network.
    members:
        The set ``W`` (senders or receivers); assumed to be reasonably well
        spread (the paper samples them uniformly at random).
    tokens_per_member:
        The per-member workload ``k`` that determines ``µ``.
    rng:
        Randomness for the helper sampling step; defaults to a fork of the
        network's root source.
    """
    member_list = sorted(set(members))
    if not member_list:
        raise ValueError("the member set W must be non-empty")
    rng = rng or network.fork_rng(phase + ":sampling")
    rounds_before = network.metrics.total_rounds

    mu = helper_parameter(network.n, len(member_list), tokens_per_member)
    ruling = compute_ruling_set(network, mu, phase=phase + ":ruling-set")
    clustering = cluster_around_rulers(network, ruling.rulers, mu, phase=phase + ":clustering")

    member_set = set(member_list)
    helpers: dict[int, list[int]] = {member: [] for member in member_list}
    for cluster_members in clustering.members.values():
        cluster_size = len(cluster_members)
        local_members = [node for node in cluster_members if node in member_set]
        if not local_members:
            continue
        probability = min(2.0 * mu / cluster_size, 1.0)
        for node in cluster_members:
            for member in local_members:
                if rng.bernoulli(probability):
                    helpers[member].append(node)
    # A member always serves as its own helper; this guarantees non-empty
    # helper sets even in the degenerate small-n / tiny-cluster regime where
    # the w.h.p. size guarantee of Lemma 2.2 has no bite.
    for member in member_list:
        if member not in helpers[member]:
            helpers[member].append(member)
    for member in member_list:
        helpers[member].sort()

    rounds_charged = network.metrics.total_rounds - rounds_before
    return HelperSets(
        members=member_list,
        mu=mu,
        helpers=helpers,
        clustering=clustering,
        rounds_charged=rounds_charged,
    )
