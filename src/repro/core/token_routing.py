"""The token routing protocol (Section 2, Theorem 2.2, Algorithms 2-4).

Problem: a set of sender nodes ``S`` must deliver point-to-point tokens of
``O(log n)`` bits to a set of receiver nodes ``R``; each sender sends at most
``k_S`` tokens, each receiver receives at most ``k_R``, and every receiver
knows the labels of the tokens it expects.  Theorem 2.2: if ``S`` and ``R``
are well spread (e.g. uniformly sampled), all tokens can be routed in
``Õ(K/n + √k_S + √k_R)`` rounds, where ``K`` is the total workload.

The protocol (Algorithms 2-4):

1. ``Compute-Helpers`` builds helper sets ``H_s`` / ``H'_r`` of size
   ``µ_S`` / ``µ_R`` for every sender and receiver (Algorithm 1).
2. ``Routing-Preparation`` distributes each sender's tokens and each
   receiver's expected labels evenly over its helpers via the local network.
3. ``Routing-Scheme`` funnels tokens from sender-helpers to receiver-helpers
   through pseudo-random intermediate nodes: the intermediate for token
   ``(s, r, i)`` is ``h(s, r, i)`` for a shared k-wise independent hash ``h``
   (Lemma D.2 keeps the per-node receive load at ``O(log n)`` w.h.p.).
   Receiver-helpers then *request* their labels from the same intermediates,
   which answer with the stored tokens.
4. Receivers finally collect their tokens from their helpers locally.
"""

from __future__ import annotations

import math
from collections.abc import Hashable, Sequence
from dataclasses import dataclass

from repro.core.helper_sets import HelperSets, compute_helper_sets, helper_parameter
from repro.hybrid.batch import MessageBatch
from repro.hybrid.errors import ProtocolError
from repro.hybrid.network import HybridNetwork
from repro.localnet.aggregation import broadcast_value
from repro.util.hashing import hash_family_for_network

try:  # Array-based helper assignment / grouping; plain loops without numpy.
    import numpy as _np

    _HAS_NUMPY = True
except ImportError:  # pragma: no cover - exercised only in stripped environments
    _np = None
    _HAS_NUMPY = False


def _assign_round_robin(endpoints: Sequence[int], helper_lists: dict[int, list[int]], role: str):
    """Per token, the helper its endpoint deals it to (``c % helper_count``).

    ``endpoints[i]`` is token ``i``'s sender (or receiver); token number ``c``
    of an endpoint goes to that endpoint's helper ``c % len(helpers)``.  With
    numpy the positions are grouped per endpoint and assigned with one take
    per endpoint instead of dict lookups per token.
    """
    if not _HAS_NUMPY or len(endpoints) < 64:
        result: list[int] = [0] * len(endpoints)
        counters: dict[int, int] = {}
        for position, endpoint in enumerate(endpoints):
            helpers = helper_lists.get(endpoint)
            if helpers is None:
                raise ProtocolError(f"token {role} {endpoint} is not in the {role} set")
            count = counters.get(endpoint, 0)
            counters[endpoint] = count + 1
            result[position] = helpers[count % len(helpers)]
        return result
    arr = _np.asarray(endpoints, dtype=_np.int64)
    order = _np.argsort(arr, kind="stable")
    sorted_endpoints = arr[order]
    starts = _np.flatnonzero(
        _np.concatenate(([True], sorted_endpoints[1:] != sorted_endpoints[:-1]))
    )
    bounds = _np.concatenate((starts, [order.size]))
    result_arr = _np.empty(arr.size, dtype=_np.int64)
    for begin, end in zip(bounds[:-1].tolist(), bounds[1:].tolist(), strict=True):
        endpoint = int(sorted_endpoints[begin])
        helpers = helper_lists.get(endpoint)
        if helpers is None:
            raise ProtocolError(f"token {role} {endpoint} is not in the {role} set")
        result_arr[order[begin:end]] = _np.take(
            _np.asarray(helpers, dtype=_np.int64),
            _np.arange(end - begin) % len(helpers),
        )
    return result_arr


@dataclass(frozen=True)
class RoutingToken:
    """One token of the routing problem, labelled ``(sender, receiver, index)``."""

    sender: int
    receiver: int
    index: int
    payload: Hashable = None

    @property
    def label(self) -> tuple[int, int, int]:
        """The token's unique label ``(s, r, i)`` used for hashing and requests."""
        return (self.sender, self.receiver, self.index)


def make_tokens(assignments: dict[int, Sequence[tuple[int, Hashable]]]) -> list[RoutingToken]:
    """Build labelled tokens from ``sender -> [(receiver, payload), ...]``.

    Indices enumerate the tokens of each (sender, receiver) pair, matching the
    labelling convention of Section 2.2.
    """
    tokens: list[RoutingToken] = []
    counters: dict[tuple[int, int], int] = {}
    for sender, items in assignments.items():
        for receiver, payload in items:
            key = (sender, receiver)
            index = counters.get(key, 0)
            counters[key] = index + 1
            tokens.append(RoutingToken(sender, receiver, index, payload))
    return tokens


@dataclass
class RoutingPlan:
    """The deterministic part of one routing instance (see TokenRouter.plan).

    Everything here is a pure function of the token labels and the router's
    shared hash function: the routable/self-delivered split, each token's
    intermediate node, the round-robin helper on both sides, and the final
    per-receiver grouping.  Reusable across :meth:`TokenRouter.route` calls
    with the same token list.
    """

    tokens: Sequence[RoutingToken]
    routable: list[RoutingToken]
    intermediates: Sequence[int]
    sender_helper_of: Sequence[int]
    receiver_helper_of: Sequence[int]
    delivered_by_receiver: dict[int, list[RoutingToken]]

    @property
    def token_count(self) -> int:
        """Number of tokens the plan was computed for."""
        return len(self.tokens)


@dataclass
class TokenRoutingResult:
    """Outcome of one token-routing execution.

    Attributes
    ----------
    delivered:
        ``receiver -> list of tokens`` it received (all tokens addressed to it).
    rounds:
        Total rounds (local + global) consumed, including helper-set
        construction unless a pre-built :class:`TokenRouter` was reused.
    mu_senders / mu_receivers:
        The helper parameters ``µ_S`` and ``µ_R`` actually used.
    sender_helpers / receiver_helpers:
        The helper families (for property auditing in tests and benchmarks).
    """

    delivered: dict[int, list[RoutingToken]]
    rounds: int
    mu_senders: int
    mu_receivers: int
    sender_helpers: HelperSets | None = None
    receiver_helpers: HelperSets | None = None
    token_count: int = 0


class TokenRouter:
    """Reusable token-routing endpoint for a fixed sender/receiver population.

    The CLIQUE simulation (Corollary 4.1) runs one routing instance per
    simulated CLIQUE round with the *same* senders and receivers; building the
    helper sets once and reusing them across rounds mirrors the paper, which
    also computes them a single time before the simulation loop.
    """

    def __init__(
        self,
        network: HybridNetwork,
        senders: Sequence[int],
        receivers: Sequence[int],
        max_tokens_per_sender: int,
        max_tokens_per_receiver: int,
        phase: str = "token-routing",
    ) -> None:
        if not senders or not receivers:
            raise ValueError("senders and receivers must be non-empty")
        self.network = network
        self.phase = phase
        self.senders = sorted(set(senders))
        self.receivers = sorted(set(receivers))
        self.max_tokens_per_sender = max(1, max_tokens_per_sender)
        self.max_tokens_per_receiver = max(1, max_tokens_per_receiver)

        self.mu_senders = helper_parameter(network.n, len(self.senders), self.max_tokens_per_sender)
        self.mu_receivers = helper_parameter(
            network.n, len(self.receivers), self.max_tokens_per_receiver
        )
        rounds_before = network.metrics.total_rounds
        self.sender_helpers = compute_helper_sets(
            network, self.senders, self.max_tokens_per_sender, phase=phase + ":sender-helpers"
        )
        self.receiver_helpers = compute_helper_sets(
            network, self.receivers, self.max_tokens_per_receiver, phase=phase + ":receiver-helpers"
        )
        # The randomly seeded hash function is shared by broadcasting its seed
        # (O(log^2 n) bits, Lemma 2.3); we charge the O(log n)-round broadcast.
        seed_rng = network.fork_rng(phase + ":hash-seed")
        self.hash_function = hash_family_for_network(network.n, seed_rng)
        broadcast_value(network, seed_rng.seed, source=self.senders[0], phase=phase + ":hash-seed")
        self.setup_rounds = network.metrics.total_rounds - rounds_before

    # ------------------------------------------------------------------ route
    def plan(self, tokens: Sequence[RoutingToken]) -> "RoutingPlan":
        """Precompute the deterministic routing plan for a token list.

        The plan -- the self-delivered split, each routable token's hashed
        intermediate and its round-robin helper on both sides -- depends only
        on the token *labels* and the router's fixed hash function, so a
        caller routing the same label set every round (the CLIQUE simulation
        routes one token per ordered skeleton pair per round) computes it
        once and passes it to :meth:`route`, exactly like the paper evaluates
        the shared hash per label once.
        """
        direct: dict[int, list[RoutingToken]] = {}
        routable: list[RoutingToken] = []
        for token in tokens:
            if token.sender == token.receiver:
                direct.setdefault(token.receiver, []).append(token)
            else:
                routable.append(token)

        # Each token's label is hashed exactly once -- the whole batch in one
        # vectorised field evaluation.  The lanes must spell out
        # RoutingToken.label's (sender, receiver, index) convention so the
        # batch evaluates the same keys as the scalar hash on token.label.
        token_senders = [token.sender for token in routable]
        token_receivers = [token.receiver for token in routable]
        intermediates = self.hash_function.many(
            (token_senders, token_receivers, [token.index for token in routable])
        )
        # Helper assignment deals each endpoint's tokens round-robin: token
        # number c of an endpoint goes to helper ``c % helper_count``, the
        # balanced ⌈k/µ⌉-per-helper split of Fact 2.4.  Both sides are
        # assigned by grouping the token positions per endpoint (one pass of
        # array ops per endpoint, not per token).
        sender_helper_of = _assign_round_robin(
            token_senders, self.sender_helpers.helpers, "sender"
        )
        receiver_helper_of = _assign_round_robin(
            token_receivers, self.receiver_helpers.helpers, "receiver"
        )
        # The final per-receiver token lists are label-determined as well
        # (everything queued is delivered), so the grouping is part of the
        # plan; route() hands out fresh copies.
        delivered_by_receiver: dict[int, list[RoutingToken]] = {
            receiver: list(items) for receiver, items in direct.items()
        }
        for receiver, _, items in MessageBatch(
            token_senders, token_receivers, routable
        ).groupby_target():
            delivered_by_receiver.setdefault(receiver, []).extend(items)
        return RoutingPlan(
            tokens=tokens,
            routable=routable,
            intermediates=intermediates,
            sender_helper_of=sender_helper_of,
            receiver_helper_of=receiver_helper_of,
            delivered_by_receiver=delivered_by_receiver,
        )

    def route(
        self, tokens: Sequence[RoutingToken], plan: "RoutingPlan" | None = None
    ) -> TokenRoutingResult:
        """Execute Routing-Preparation + Routing-Scheme for the given tokens.

        The returned round count covers this routing instance only; the
        one-time helper-set construction cost is available as ``setup_rounds``
        (the :func:`route_tokens` convenience wrapper includes it).  A
        :meth:`plan` computed for this exact token list may be passed to skip
        re-deriving the hashes and helper assignments (they are deterministic
        per label set).

        Tokens whose sender equals their receiver are delivered directly (the
        node already has them); everything else flows through helpers and
        intermediates.  Raises :class:`ProtocolError` if a token fails to reach
        its receiver (which would indicate an engine bug).
        """
        network = self.network
        rounds_before = network.metrics.total_rounds
        log_factor = network.config.log_rounds(network.n)

        if plan is None:
            plan = self.plan(tokens)
        elif plan.tokens is not tokens:
            # Same-length-different-content misuse would silently deliver the
            # plan's tokens, so require the exact list the plan was built for.
            raise ValueError("routing plan was computed for a different token list")
        routable = plan.routable
        intermediates = plan.intermediates
        sender_helper_of = plan.sender_helper_of
        receiver_helper_of = plan.receiver_helper_of

        # ---------------------------------------------- Routing-Preparation
        # Two local flooding loops bounded by 2(µ_S + µ_R)⌈log n⌉ rounds each:
        # helpers detect whom they help, then tokens / labels reach the
        # helpers.  As with the clustering, we charge the flood depth the
        # protocol actually needs -- twice the real cluster radii -- capped by
        # the paper's worst-case bound.
        sender_radius = self.sender_helpers.clustering.radius
        receiver_radius = self.receiver_helpers.clustering.radius
        paper_bound = max(1, 2 * (self.mu_senders + self.mu_receivers) * log_factor)
        preparation_rounds = max(1, min(2 * (sender_radius + receiver_radius), paper_bound))
        network.charge_local_rounds(preparation_rounds, self.phase + ":preparation-detect")
        network.charge_local_rounds(preparation_rounds, self.phase + ":preparation-distribute")

        # -------------------------------------------------- Routing-Scheme
        # The three phases ship their traffic as MessageBatch columns built
        # straight from the token/helper/intermediate arrays (one message per
        # token and phase), so the engine schedules and accounts them with
        # whole-array operations.  Each phase runs as a *reliable* exchange:
        # on the ideal model that is plain run_global_exchange (bit-identical
        # rounds), under an active FaultModel it retransmits unacknowledged
        # messages within the retry budget and raises
        # FaultToleranceExceededError when beaten -- so a completed exchange
        # always delivered every queued message, and the request an
        # intermediate receives for a label and the token it stores for that
        # label both follow from the same array row: phase C's outboxes are
        # derived from it directly instead of re-keying a per-intermediate
        # store off the phase B inboxes.
        # Phase A: sender-helpers push tokens to their intermediate nodes.
        network.run_reliable_exchange(
            MessageBatch(sender_helper_of, intermediates, routable), self.phase + ":push"
        )
        # Phase B: receiver-helpers request their labels from the
        # intermediates (the payload stands for ``(label, requester)``).
        network.run_reliable_exchange(
            MessageBatch(receiver_helper_of, intermediates, routable),
            self.phase + ":request",
        )
        # Phase C: intermediates answer every request with the stored token.
        response_inboxes, _ = network.run_reliable_exchange(
            MessageBatch(intermediates, receiver_helper_of, routable),
            self.phase + ":respond",
        )

        # Receivers collect the fetched tokens from their helpers locally.
        collection_bound = max(1, 2 * self.mu_receivers * log_factor)
        collection_rounds = max(1, min(2 * receiver_radius, collection_bound))
        network.charge_local_rounds(collection_rounds, self.phase + ":collect")
        # The exchange must have carried one response per routed token; with
        # the count verified, the per-receiver token lists come from the plan
        # (label-determined) instead of a per-message fold of the inbox.
        if len(response_inboxes) != len(routable):
            raise ProtocolError(
                f"token routing delivered {len(response_inboxes)} of "
                f"{len(routable)} routed tokens"
            )
        delivered: dict[int, list[RoutingToken]] = {
            receiver: list(items) for receiver, items in plan.delivered_by_receiver.items()
        }

        expected = len(tokens)
        received = sum(len(items) for items in delivered.values())
        if received != expected:
            raise ProtocolError(
                f"token routing delivered {received} of {expected} tokens"
            )

        rounds = network.metrics.total_rounds - rounds_before
        return TokenRoutingResult(
            delivered=delivered,
            rounds=rounds,
            mu_senders=self.mu_senders,
            mu_receivers=self.mu_receivers,
            sender_helpers=self.sender_helpers,
            receiver_helpers=self.receiver_helpers,
            token_count=len(tokens),
        )


def route_tokens(
    network: HybridNetwork,
    tokens: Sequence[RoutingToken],
    phase: str = "token-routing",
) -> TokenRoutingResult:
    """One-shot Theorem 2.2: build helper sets for the tokens' endpoints and route.

    ``k_S`` and ``k_R`` are derived from the token list (maximum per sender /
    per receiver), matching the problem statement in Section 1.3.
    """
    if not tokens:
        return TokenRoutingResult(
            delivered={}, rounds=0, mu_senders=1, mu_receivers=1, token_count=0
        )
    per_sender: dict[int, int] = {}
    per_receiver: dict[int, int] = {}
    for token in tokens:
        per_sender[token.sender] = per_sender.get(token.sender, 0) + 1
        per_receiver[token.receiver] = per_receiver.get(token.receiver, 0) + 1
    router = TokenRouter(
        network,
        senders=list(per_sender),
        receivers=list(per_receiver),
        max_tokens_per_sender=max(per_sender.values()),
        max_tokens_per_receiver=max(per_receiver.values()),
        phase=phase,
    )
    result = router.route(tokens)
    result.rounds += router.setup_rounds
    return result


def predicted_routing_rounds(
    n: int,
    sender_count: int,
    receiver_count: int,
    tokens_per_sender: int,
    tokens_per_receiver: int,
) -> float:
    """The Theorem 2.2 bound ``K/n + √k_S + √k_R`` (without polylog factors).

    Benchmarks compare measured rounds against this quantity to validate the
    claimed shape.
    """
    workload = sender_count * tokens_per_sender + receiver_count * tokens_per_receiver
    return (
        workload / max(n, 1)
        + math.sqrt(max(tokens_per_sender, 0))
        + math.sqrt(max(tokens_per_receiver, 0))
    )
