"""The token routing protocol (Section 2, Theorem 2.2, Algorithms 2-4).

Problem: a set of sender nodes ``S`` must deliver point-to-point tokens of
``O(log n)`` bits to a set of receiver nodes ``R``; each sender sends at most
``k_S`` tokens, each receiver receives at most ``k_R``, and every receiver
knows the labels of the tokens it expects.  Theorem 2.2: if ``S`` and ``R``
are well spread (e.g. uniformly sampled), all tokens can be routed in
``Õ(K/n + √k_S + √k_R)`` rounds, where ``K`` is the total workload.

The protocol (Algorithms 2-4):

1. ``Compute-Helpers`` builds helper sets ``H_s`` / ``H'_r`` of size
   ``µ_S`` / ``µ_R`` for every sender and receiver (Algorithm 1).
2. ``Routing-Preparation`` distributes each sender's tokens and each
   receiver's expected labels evenly over its helpers via the local network.
3. ``Routing-Scheme`` funnels tokens from sender-helpers to receiver-helpers
   through pseudo-random intermediate nodes: the intermediate for token
   ``(s, r, i)`` is ``h(s, r, i)`` for a shared k-wise independent hash ``h``
   (Lemma D.2 keeps the per-node receive load at ``O(log n)`` w.h.p.).
   Receiver-helpers then *request* their labels from the same intermediates,
   which answer with the stored tokens.
4. Receivers finally collect their tokens from their helpers locally.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from repro.core.helper_sets import HelperSets, compute_helper_sets, helper_parameter
from repro.hybrid.errors import ProtocolError
from repro.hybrid.network import HybridNetwork
from repro.localnet.aggregation import broadcast_value
from repro.util.hashing import hash_family_for_network
from repro.util.rand import split_evenly


@dataclass(frozen=True)
class RoutingToken:
    """One token of the routing problem, labelled ``(sender, receiver, index)``."""

    sender: int
    receiver: int
    index: int
    payload: Hashable = None

    @property
    def label(self) -> Tuple[int, int, int]:
        """The token's unique label ``(s, r, i)`` used for hashing and requests."""
        return (self.sender, self.receiver, self.index)


def make_tokens(assignments: Dict[int, Sequence[Tuple[int, Hashable]]]) -> List[RoutingToken]:
    """Build labelled tokens from ``sender -> [(receiver, payload), ...]``.

    Indices enumerate the tokens of each (sender, receiver) pair, matching the
    labelling convention of Section 2.2.
    """
    tokens: List[RoutingToken] = []
    counters: Dict[Tuple[int, int], int] = {}
    for sender, items in assignments.items():
        for receiver, payload in items:
            key = (sender, receiver)
            index = counters.get(key, 0)
            counters[key] = index + 1
            tokens.append(RoutingToken(sender, receiver, index, payload))
    return tokens


@dataclass
class TokenRoutingResult:
    """Outcome of one token-routing execution.

    Attributes
    ----------
    delivered:
        ``receiver -> list of tokens`` it received (all tokens addressed to it).
    rounds:
        Total rounds (local + global) consumed, including helper-set
        construction unless a pre-built :class:`TokenRouter` was reused.
    mu_senders / mu_receivers:
        The helper parameters ``µ_S`` and ``µ_R`` actually used.
    sender_helpers / receiver_helpers:
        The helper families (for property auditing in tests and benchmarks).
    """

    delivered: Dict[int, List[RoutingToken]]
    rounds: int
    mu_senders: int
    mu_receivers: int
    sender_helpers: Optional[HelperSets] = None
    receiver_helpers: Optional[HelperSets] = None
    token_count: int = 0


class TokenRouter:
    """Reusable token-routing endpoint for a fixed sender/receiver population.

    The CLIQUE simulation (Corollary 4.1) runs one routing instance per
    simulated CLIQUE round with the *same* senders and receivers; building the
    helper sets once and reusing them across rounds mirrors the paper, which
    also computes them a single time before the simulation loop.
    """

    def __init__(
        self,
        network: HybridNetwork,
        senders: Sequence[int],
        receivers: Sequence[int],
        max_tokens_per_sender: int,
        max_tokens_per_receiver: int,
        phase: str = "token-routing",
    ) -> None:
        if not senders or not receivers:
            raise ValueError("senders and receivers must be non-empty")
        self.network = network
        self.phase = phase
        self.senders = sorted(set(senders))
        self.receivers = sorted(set(receivers))
        self.max_tokens_per_sender = max(1, max_tokens_per_sender)
        self.max_tokens_per_receiver = max(1, max_tokens_per_receiver)

        self.mu_senders = helper_parameter(network.n, len(self.senders), self.max_tokens_per_sender)
        self.mu_receivers = helper_parameter(
            network.n, len(self.receivers), self.max_tokens_per_receiver
        )
        rounds_before = network.metrics.total_rounds
        self.sender_helpers = compute_helper_sets(
            network, self.senders, self.max_tokens_per_sender, phase=phase + ":sender-helpers"
        )
        self.receiver_helpers = compute_helper_sets(
            network, self.receivers, self.max_tokens_per_receiver, phase=phase + ":receiver-helpers"
        )
        # The randomly seeded hash function is shared by broadcasting its seed
        # (O(log^2 n) bits, Lemma 2.3); we charge the O(log n)-round broadcast.
        seed_rng = network.fork_rng(phase + ":hash-seed")
        self.hash_function = hash_family_for_network(network.n, seed_rng)
        broadcast_value(network, seed_rng.seed, source=self.senders[0], phase=phase + ":hash-seed")
        self.setup_rounds = network.metrics.total_rounds - rounds_before

    # ------------------------------------------------------------------ route
    def route(self, tokens: Sequence[RoutingToken]) -> TokenRoutingResult:
        """Execute Routing-Preparation + Routing-Scheme for the given tokens.

        The returned round count covers this routing instance only; the
        one-time helper-set construction cost is available as ``setup_rounds``
        (the :func:`route_tokens` convenience wrapper includes it).

        Tokens whose sender equals their receiver are delivered directly (the
        node already has them); everything else flows through helpers and
        intermediates.  Raises :class:`ProtocolError` if a token fails to reach
        its receiver (which would indicate an engine bug).
        """
        network = self.network
        rounds_before = network.metrics.total_rounds
        log_factor = network.config.log_rounds(network.n)

        delivered: Dict[int, List[RoutingToken]] = {}
        routable: List[RoutingToken] = []
        for token in tokens:
            if token.sender == token.receiver:
                delivered.setdefault(token.receiver, []).append(token)
            else:
                routable.append(token)

        # Each token's label is materialised and hashed exactly once -- the
        # whole batch in one vectorised field evaluation -- and the
        # (token, label, intermediate) triple travels through the phases, so
        # the simulation never re-runs the Horner evaluation for the same
        # label (the sender helper in phase A and the receiver helper in
        # phase B evaluate the same shared function on the same label).
        # The lanes must spell out RoutingToken.label's (sender, receiver,
        # index) convention so the batch evaluates the same keys as the
        # scalar hash on token.label.
        intermediates = self.hash_function.many(
            (
                [token.sender for token in routable],
                [token.receiver for token in routable],
                [token.index for token in routable],
            )
        )
        sender_tokens: Dict[int, List[Tuple[RoutingToken, Tuple[int, int, int], int]]] = {}
        receiver_labels: Dict[int, List[Tuple[Tuple[int, int, int], int]]] = {}
        for token, intermediate in zip(routable, intermediates):
            if token.sender not in self.sender_helpers.helpers:
                raise ProtocolError(f"token sender {token.sender} is not in the sender set")
            if token.receiver not in self.receiver_helpers.helpers:
                raise ProtocolError(f"token receiver {token.receiver} is not in the receiver set")
            label = token.label
            sender_tokens.setdefault(token.sender, []).append((token, label, intermediate))
            receiver_labels.setdefault(token.receiver, []).append((label, intermediate))

        # ---------------------------------------------- Routing-Preparation
        # Two local flooding loops bounded by 2(µ_S + µ_R)⌈log n⌉ rounds each:
        # helpers detect whom they help, then tokens / labels reach the
        # helpers.  As with the clustering, we charge the flood depth the
        # protocol actually needs -- twice the real cluster radii -- capped by
        # the paper's worst-case bound.
        sender_radius = self.sender_helpers.clustering.radius
        receiver_radius = self.receiver_helpers.clustering.radius
        paper_bound = max(1, 2 * (self.mu_senders + self.mu_receivers) * log_factor)
        preparation_rounds = max(1, min(2 * (sender_radius + receiver_radius), paper_bound))
        network.charge_local_rounds(preparation_rounds, self.phase + ":preparation-detect")
        network.charge_local_rounds(preparation_rounds, self.phase + ":preparation-distribute")

        helper_outgoing: Dict[int, List[Tuple[RoutingToken, Tuple[int, int, int], int]]] = {}
        for sender, its_tokens in sender_tokens.items():
            helper_nodes = self.sender_helpers.helpers[sender]
            for helper, bucket in zip(helper_nodes, split_evenly(its_tokens, len(helper_nodes))):
                if bucket:
                    helper_outgoing.setdefault(helper, []).extend(bucket)

        helper_requests: Dict[int, List[Tuple[Tuple[int, int, int], int, int]]] = {}
        for receiver, labels in receiver_labels.items():
            helper_nodes = self.receiver_helpers.helpers[receiver]
            for helper, bucket in zip(helper_nodes, split_evenly(labels, len(helper_nodes))):
                for label, intermediate in bucket:
                    helper_requests.setdefault(helper, []).append((label, intermediate, receiver))

        # -------------------------------------------------- Routing-Scheme
        # Phase A: sender-helpers push tokens to their intermediate nodes.
        push_outboxes = {
            helper: [(intermediate, token) for token, _, intermediate in entries]
            for helper, entries in helper_outgoing.items()
        }
        network.run_global_exchange(push_outboxes, self.phase + ":push")
        # The exchange always delivers every queued message, so the store each
        # intermediate ends up with is exactly the pushed (label -> token) map;
        # building it from the outgoing side skips re-deriving labels from the
        # inbox payloads.
        intermediate_store: Dict[int, Dict[Tuple[int, int, int], RoutingToken]] = {}
        for entries in helper_outgoing.values():
            for token, label, intermediate in entries:
                store = intermediate_store.get(intermediate)
                if store is None:
                    store = intermediate_store[intermediate] = {}
                store[label] = token

        # Phase B: receiver-helpers request their labels from the intermediates.
        request_outboxes = {
            helper: [
                (intermediate, ("request", label, helper))
                for label, intermediate, _ in requests
            ]
            for helper, requests in helper_requests.items()
        }
        request_inboxes, _ = network.run_global_exchange(request_outboxes, self.phase + ":request")

        # Phase C: intermediates answer every request with the stored token.
        response_outboxes: Dict[int, List[Tuple[int, RoutingToken]]] = {}
        for intermediate, messages in request_inboxes.items():
            store = intermediate_store.get(intermediate, {})
            for _, (_, label, requester) in messages:
                token = store.get(label)
                if token is None:
                    raise ProtocolError(f"intermediate {intermediate} missing token {label}")
                response_outboxes.setdefault(intermediate, []).append((requester, token))
        response_inboxes, _ = network.run_global_exchange(response_outboxes, self.phase + ":respond")

        # Receivers collect the fetched tokens from their helpers locally.
        collection_bound = max(1, 2 * self.mu_receivers * log_factor)
        collection_rounds = max(1, min(2 * receiver_radius, collection_bound))
        network.charge_local_rounds(collection_rounds, self.phase + ":collect")
        for _, messages in response_inboxes.items():
            for _, token in messages:
                delivered.setdefault(token.receiver, []).append(token)

        expected = len(tokens)
        received = sum(len(items) for items in delivered.values())
        if received != expected:
            raise ProtocolError(
                f"token routing delivered {received} of {expected} tokens"
            )

        rounds = network.metrics.total_rounds - rounds_before
        return TokenRoutingResult(
            delivered=delivered,
            rounds=rounds,
            mu_senders=self.mu_senders,
            mu_receivers=self.mu_receivers,
            sender_helpers=self.sender_helpers,
            receiver_helpers=self.receiver_helpers,
            token_count=len(tokens),
        )


def route_tokens(
    network: HybridNetwork,
    tokens: Sequence[RoutingToken],
    phase: str = "token-routing",
) -> TokenRoutingResult:
    """One-shot Theorem 2.2: build helper sets for the tokens' endpoints and route.

    ``k_S`` and ``k_R`` are derived from the token list (maximum per sender /
    per receiver), matching the problem statement in Section 1.3.
    """
    if not tokens:
        return TokenRoutingResult(
            delivered={}, rounds=0, mu_senders=1, mu_receivers=1, token_count=0
        )
    per_sender: Dict[int, int] = {}
    per_receiver: Dict[int, int] = {}
    for token in tokens:
        per_sender[token.sender] = per_sender.get(token.sender, 0) + 1
        per_receiver[token.receiver] = per_receiver.get(token.receiver, 0) + 1
    router = TokenRouter(
        network,
        senders=list(per_sender),
        receivers=list(per_receiver),
        max_tokens_per_sender=max(per_sender.values()),
        max_tokens_per_receiver=max(per_receiver.values()),
        phase=phase,
    )
    result = router.route(tokens)
    result.rounds += router.setup_rounds
    return result


def predicted_routing_rounds(
    n: int,
    sender_count: int,
    receiver_count: int,
    tokens_per_sender: int,
    tokens_per_receiver: int,
) -> float:
    """The Theorem 2.2 bound ``K/n + √k_S + √k_R`` (without polylog factors).

    Benchmarks compare measured rounds against this quantity to validate the
    claimed shape.
    """
    workload = sender_count * tokens_per_sender + receiver_count * tokens_per_receiver
    return (
        workload / max(n, 1)
        + math.sqrt(max(tokens_per_sender, 0))
        + math.sqrt(max(tokens_per_receiver, 0))
    )
