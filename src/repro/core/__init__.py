"""The paper's algorithmic contributions (Sections 2-5).

* :mod:`repro.core.helper_sets`, :mod:`repro.core.token_routing` -- Section 2.
* :mod:`repro.core.apsp` -- exact APSP in ``Õ(√n)`` rounds (Theorem 1.1).
* :mod:`repro.core.skeleton`, :mod:`repro.core.representatives`,
  :mod:`repro.core.clique_simulation`, :mod:`repro.core.kssp`,
  :mod:`repro.core.sssp` -- the CLIQUE-simulation framework of Section 4
  (Theorem 4.1) and its instantiations (Theorems 1.2 / 1.3).
* :mod:`repro.core.diameter` -- diameter approximation (Theorem 5.1 / 1.4).
"""

from repro.core.apsp import APSPResult, apsp_exact
from repro.core.clique_simulation import HybridCliqueTransport, predicted_simulation_rounds
from repro.core.context import SkeletonContext, prepare_skeleton_context
from repro.core.diameter import DiameterResult, approximate_diameter
from repro.core.helper_sets import HelperSets, compute_helper_sets, helper_parameter
from repro.core.kssp import (
    ShortestPathsResult,
    predicted_framework_rounds,
    shortest_paths_via_clique,
)
from repro.core.representatives import Representatives, compute_representatives
from repro.core.skeleton import (
    Skeleton,
    compute_skeleton,
    framework_exponent,
    framework_sampling_probability,
)
from repro.core.sssp import SSSPResult, sssp_exact
from repro.core.token_routing import (
    RoutingToken,
    TokenRouter,
    TokenRoutingResult,
    make_tokens,
    predicted_routing_rounds,
    route_tokens,
)

__all__ = [
    "APSPResult",
    "apsp_exact",
    "HybridCliqueTransport",
    "predicted_simulation_rounds",
    "DiameterResult",
    "approximate_diameter",
    "HelperSets",
    "compute_helper_sets",
    "helper_parameter",
    "ShortestPathsResult",
    "predicted_framework_rounds",
    "shortest_paths_via_clique",
    "Representatives",
    "compute_representatives",
    "Skeleton",
    "SkeletonContext",
    "prepare_skeleton_context",
    "compute_skeleton",
    "framework_exponent",
    "framework_sampling_probability",
    "SSSPResult",
    "sssp_exact",
    "RoutingToken",
    "TokenRouter",
    "TokenRoutingResult",
    "make_tokens",
    "predicted_routing_rounds",
    "route_tokens",
]
