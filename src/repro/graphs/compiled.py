"""The compiled graph-kernel plane: njit / scipy.sparse ports of the hot kernels.

BENCH_core.json shows the numpy CSR kernels of :mod:`repro.graphs.csr` are the
wall-clock floor of every simulation: CSR bought 3-4x over the dict backend and
the vectorized message plane 2-4x over the scalar scan, but each relaxation
round is still a chain of interpreter-dispatched numpy calls, which caps
experiments near n = 512.  This module provides a third execution plane for the
same three kernels -- multi-source Dijkstra/Bellman-Ford distances, hop-limited
``d_h`` relaxation, and level-synchronous BFS -- compiled to native code:

* **numba** ``@njit(cache=True)`` ports when numba is importable: a per-source
  array-heap Dijkstra, a synchronous hop-limited Bellman-Ford, and a frontier
  BFS, all operating directly on the frozen CSR arrays; and
* **scipy.sparse.csgraph** formulations when scipy is importable: exact
  distances and BFS levels via the C implementation of
  :func:`scipy.sparse.csgraph.dijkstra` over a cached ``csr_matrix`` view
  (the sparse-algebra template of ``graphkit-learn``'s kernels, see ROADMAP).

Selection is per kernel: njit when available, else the scipy formulation where
one is natural (exact distances, BFS levels), else the pure numpy kernel.  The
weighted hop-limited ``d_h`` has no faster sparse formulation than the numpy
scatter-min relaxation, so without numba it falls back to
:func:`repro.graphs.csr._relax_rounds` -- graceful degradation is the contract:
importing this module never fails, and every public function returns
bit-identical results on every plane.

**Oracle discipline (DESIGN.md §9).**  The numpy kernels stay pinned as the
differential-testing oracle exactly the way the scalar message plane anchors
the vectorized one: edge weights are positive integers, every distance is an
exact float64 sum along one path, and all three planes take the same minima,
so no floating-point divergence is possible.  tests/test_compiled_plane.py
pins compiled-vs-numpy-vs-dict equality property-style, and the benchmark
record ``compiled-kernel`` in BENCH_core.json tracks the measured speedup at
n = 4096.

:class:`~repro.graphs.graph.WeightedGraph` exposes this plane as
``backend="csr-njit"``; ``backend="auto"`` prefers it whenever
:func:`available` is true.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.graphs import csr as _numpy_plane
from repro.graphs.csr import (
    CSRAdjacency,
    _levels_as_distances,
    _relax_rounds,
)

try:  # Optional accelerator: the plane degrades per kernel without it.
    from numba import njit as _njit

    HAS_NUMBA = True
except ImportError:  # pragma: no cover - numba is absent in the base container
    _njit = None
    HAS_NUMBA = False

try:  # Optional accelerator: C shortest-path kernels over sparse matrices.
    from scipy import sparse as _sparse
    from scipy.sparse import csgraph as _csgraph

    HAS_SCIPY = True
except ImportError:  # pragma: no cover - exercised in the no-scipy CI leg
    _sparse = None
    _csgraph = None
    HAS_SCIPY = False


def available() -> bool:
    """Whether any compiled kernel (njit or scipy) is importable."""
    return HAS_NUMBA or HAS_SCIPY


def kernel_report() -> dict:
    """Which implementation each kernel resolves to right now (diagnostics)."""
    compiled = "njit" if HAS_NUMBA else ("scipy" if HAS_SCIPY else "numpy")
    return {
        "available": available(),
        "numba": HAS_NUMBA,
        "scipy": HAS_SCIPY,
        "distance_matrix": compiled,
        "bfs_level_matrix": compiled,
        "hop_limited_matrix": "njit" if HAS_NUMBA else "numpy",
    }


def _scipy_view(csr: CSRAdjacency):
    """The cached ``scipy.sparse.csr_matrix`` view of a frozen adjacency.

    Built once per :class:`CSRAdjacency`; the adjacency is immutable after
    construction (mutation drops the whole view), so the cache never goes
    stale.
    """
    view = csr.sparse_view
    if view is None:
        view = _sparse.csr_matrix(
            (csr.weights, csr.indices, csr.indptr), shape=(csr.n, csr.n)
        )
        csr.sparse_view = view
    return view


# --------------------------------------------------------------------- numba
# The njit kernels operate on the raw CSR arrays; each is the textbook
# sequential algorithm, compiled.  Distances are float64 sums of positive
# integer weights, hence exact, hence bit-identical to the numpy plane.

if HAS_NUMBA:

    @_njit(cache=True)
    def _njit_dijkstra_many(indptr, indices, weights, sources, out):  # pragma: no cover
        """Array-heap Dijkstra from each source into ``out`` (one row each)."""
        n = out.shape[1]
        heap_d = np.empty(n + indices.shape[0] + 1, dtype=np.float64)
        heap_v = np.empty(n + indices.shape[0] + 1, dtype=np.int64)
        for row in range(sources.shape[0]):
            dist = out[row]
            for i in range(n):
                dist[i] = np.inf
            source = sources[row]
            dist[source] = 0.0
            heap_d[0] = 0.0
            heap_v[0] = source
            size = 1
            while size > 0:
                d = heap_d[0]
                u = heap_v[0]
                size -= 1
                # Pop: move the last leaf to the root and sift it down.
                last_d = heap_d[size]
                last_v = heap_v[size]
                pos = 0
                while True:
                    child = 2 * pos + 1
                    if child >= size:
                        break
                    if child + 1 < size and heap_d[child + 1] < heap_d[child]:
                        child += 1
                    if heap_d[child] < last_d:
                        heap_d[pos] = heap_d[child]
                        heap_v[pos] = heap_v[child]
                        pos = child
                    else:
                        break
                heap_d[pos] = last_d
                heap_v[pos] = last_v
                if d > dist[u]:
                    continue
                for e in range(indptr[u], indptr[u + 1]):
                    v = indices[e]
                    nd = d + weights[e]
                    if nd < dist[v]:
                        dist[v] = nd
                        # Push: append and sift up.
                        pos = size
                        size += 1
                        while pos > 0:
                            parent = (pos - 1) // 2
                            if heap_d[parent] > nd:
                                heap_d[pos] = heap_d[parent]
                                heap_v[pos] = heap_v[parent]
                                pos = parent
                            else:
                                break
                        heap_d[pos] = nd
                        heap_v[pos] = v

    @_njit(cache=True)
    def _njit_bfs_levels(indptr, indices, sources, max_hops, out):  # pragma: no cover
        """Frontier BFS levels from each source into ``out`` (-1 = unreached)."""
        n = out.shape[1]
        frontier = np.empty(n, dtype=np.int64)
        next_frontier = np.empty(n, dtype=np.int64)
        for row in range(sources.shape[0]):
            levels = out[row]
            for i in range(n):
                levels[i] = -1
            source = sources[row]
            levels[source] = 0
            frontier[0] = source
            frontier_size = 1
            hops = 0
            while frontier_size > 0 and hops < max_hops:
                hops += 1
                next_size = 0
                for f in range(frontier_size):
                    u = frontier[f]
                    for e in range(indptr[u], indptr[u + 1]):
                        v = indices[e]
                        if levels[v] < 0:
                            levels[v] = hops
                            next_frontier[next_size] = v
                            next_size += 1
                frontier, next_frontier = next_frontier, frontier
                frontier_size = next_size

    @_njit(cache=True)
    def _njit_hop_limited(indptr, indices, weights, sources, hop_limit, out):  # pragma: no cover
        """Synchronous hop-limited Bellman-Ford (the literal ``d_h``) per source.

        Rounds are strictly separated: each frontier node relaxes with the
        value it had at the *start* of the round (carried in ``frontier_val``),
        so after ``k`` rounds ``out[row, v]`` is the minimum weight of any
        walk with at most ``k`` edges -- never fewer hops than charged.
        """
        n = out.shape[1]
        frontier = np.empty(n, dtype=np.int64)
        frontier_val = np.empty(n, dtype=np.float64)
        improved = np.empty(n, dtype=np.int64)
        in_next = np.zeros(n, dtype=np.uint8)
        for row in range(sources.shape[0]):
            dist = out[row]
            for i in range(n):
                dist[i] = np.inf
            source = sources[row]
            dist[source] = 0.0
            frontier[0] = source
            frontier_val[0] = 0.0
            frontier_size = 1
            rounds = 0
            while frontier_size > 0 and rounds < hop_limit:
                rounds += 1
                improved_size = 0
                for f in range(frontier_size):
                    u = frontier[f]
                    du = frontier_val[f]
                    for e in range(indptr[u], indptr[u + 1]):
                        v = indices[e]
                        nd = du + weights[e]
                        if nd < dist[v]:
                            dist[v] = nd
                            if in_next[v] == 0:
                                in_next[v] = 1
                                improved[improved_size] = v
                                improved_size += 1
                for f in range(improved_size):
                    v = improved[f]
                    in_next[v] = 0
                    frontier[f] = v
                    frontier_val[f] = dist[v]
                frontier_size = improved_size


def _as_source_array(sources: Sequence[int]) -> np.ndarray:
    return np.asarray(list(sources), dtype=np.int64)


# ------------------------------------------------------------------ public API
# Same signatures and return conventions as repro.graphs.csr; WeightedGraph
# dispatches here when the resolved backend is "csr-njit".


def bfs_level_matrix(
    csr: CSRAdjacency, sources: Sequence[int], max_hops: int | None = None
) -> np.ndarray:
    """Compiled :func:`repro.graphs.csr.bfs_level_matrix` (bit-identical)."""
    src = _as_source_array(sources)
    if src.size == 0:
        return np.empty((0, csr.n), dtype=np.int64)
    limit = csr.n if max_hops is None else max_hops
    if HAS_NUMBA:
        out = np.empty((src.shape[0], csr.n), dtype=np.int64)
        _njit_bfs_levels(csr.indptr, csr.indices, src, limit, out)
        return out
    if HAS_SCIPY:
        hops = _csgraph.dijkstra(_scipy_view(csr), indices=src, unweighted=True, limit=limit)
        levels = np.full(hops.shape, -1, dtype=np.int64)
        reached = np.isfinite(hops)
        levels[reached] = hops[reached].astype(np.int64)
        return levels
    return _numpy_plane.bfs_level_matrix(csr, sources, max_hops)


def distance_matrix(csr: CSRAdjacency, sources: Sequence[int]) -> np.ndarray:
    """Compiled :func:`repro.graphs.csr.distance_matrix` (bit-identical)."""
    src = _as_source_array(sources)
    if src.size == 0:
        return np.empty((0, csr.n), dtype=np.float64)
    if csr.unit_weights:
        return _levels_as_distances(bfs_level_matrix(csr, sources, None))
    if HAS_NUMBA:
        out = np.empty((src.shape[0], csr.n), dtype=np.float64)
        _njit_dijkstra_many(csr.indptr, csr.indices, csr.weights, src, out)
        return out
    if HAS_SCIPY:
        return _csgraph.dijkstra(_scipy_view(csr), indices=src)
    return _numpy_plane.distance_matrix(csr, sources)


def hop_limited_matrix(csr: CSRAdjacency, sources: Sequence[int], hop_limit: int) -> np.ndarray:
    """Compiled :func:`repro.graphs.csr.hop_limited_matrix` (bit-identical).

    Weighted ``d_h`` is inherently round-synchronous; without numba there is
    no sparse-algebra formulation faster than the numpy scatter-min rounds,
    so that case falls back to the numpy oracle directly.
    """
    if csr.unit_weights:
        return _levels_as_distances(bfs_level_matrix(csr, sources, hop_limit))
    src = _as_source_array(sources)
    if src.size == 0:
        return np.empty((0, csr.n), dtype=np.float64)
    if HAS_NUMBA:
        out = np.empty((src.shape[0], csr.n), dtype=np.float64)
        _njit_hop_limited(csr.indptr, csr.indices, csr.weights, src, hop_limit, out)
        return out
    return _relax_rounds(csr, sources, hop_limit)
