"""Weighted graph kernel used by every layer of the library.

The paper's local communication graph ``G = (V, E)`` is an undirected graph
with integer edge weights ``w : E -> [W]`` where ``W`` is at most polynomial in
``n`` (Section 1.3).  :class:`WeightedGraph` is a small, dependency-free
adjacency structure with exactly the operations the HYBRID algorithms need:

* neighbourhood queries (the LOCAL mode),
* hop-limited breadth-first search (``hop(u, v)`` and ``h``-hop balls),
* hop-limited weighted distances ``d_h(u, v)`` (Section 1.3), and
* conversions to/from :mod:`networkx` for cross-checking in tests.

Nodes are always the integers ``0 .. n-1``; the paper identifies nodes with IDs
``[n]`` and several protocols (hashing to intermediate nodes, implicit
aggregation trees) rely on the ID space being exactly ``[0, n)``.

Three storage/traversal backends are available (see DESIGN.md §4 and §9):

* ``"dict"`` -- the original dependency-free dict-of-dicts adjacency with
  pure-Python traversals;
* ``"csr"`` -- the same mutable adjacency plus a frozen numpy CSR view
  (:mod:`repro.graphs.csr`) built lazily on the first *batched* traversal and
  invalidated by ``add_edge`` / ``remove_edge``.  The batched multi-source
  kernels (``bfs_hops_many``, ``hop_limited_distances_many``,
  ``dijkstra_many``, the matrix variants, ``hop_eccentricities``) run as
  vectorised synchronous rounds over all sources at once; and
* ``"csr-njit"`` -- the same CSR view with the batched kernels executed on
  the compiled plane (:mod:`repro.graphs.compiled`): numba ``@njit`` ports
  when numba is importable, ``scipy.sparse.csgraph`` formulations when scipy
  is, per-kernel fallback to the numpy kernels otherwise.

The default ``"auto"`` prefers the compiled plane when an accelerator is
importable, then CSR whenever numpy is.  All backends return bit-identical
results for every method (weights are positive integers, so all float
distances are exact sums), which tests/test_backends.py and
tests/test_compiled_plane.py assert property-style.
"""

from __future__ import annotations

import heapq
from collections import deque
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass

try:  # numpy is a hard dependency of the repo, but the dict backend works without it.
    import numpy as _np

    _HAS_NUMPY = True
except ImportError:  # pragma: no cover - exercised only in stripped environments
    _np = None
    _HAS_NUMPY = False

INFINITY = float("inf")

_BACKENDS = ("auto", "dict", "csr", "csr-njit")

#: How many mutations the delta log retains.  ``deltas_since`` answers None
#: once a gap falls off the log, so consumers (delta repair, DESIGN.md §12)
#: degrade to a cold rebuild rather than replaying an incomplete history.
DELTA_LOG_LIMIT = 1024


@dataclass(frozen=True)
class GraphDelta:
    """One recorded mutation of a :class:`WeightedGraph` (DESIGN.md §12).

    Every mutation that bumps :attr:`WeightedGraph.version` appends exactly
    one delta, so the log is a contiguous, replayable history of the version
    counter: ``version`` is the counter value *after* the mutation applied.
    No-op mutations (re-adding an edge at its current weight) record nothing
    because they bump nothing.

    Attributes
    ----------
    kind:
        ``"add"`` (new edge), ``"remove"`` (edge deleted) or ``"update"``
        (weight change on an existing edge; the hop topology is unchanged).
    u, v:
        The edge endpoints, in the order the caller named them.
    weight:
        The weight after the mutation (None for ``"remove"``).
    old_weight:
        The weight before the mutation (None for ``"add"``).
    version:
        :attr:`WeightedGraph.version` after this mutation.
    """

    kind: str
    u: int
    v: int
    weight: int | None
    old_weight: int | None
    version: int

    @property
    def topological(self) -> bool:
        """Whether the mutation changed the edge set (vs only a weight)."""
        return self.kind != "update"


class WeightedGraph:
    """An undirected graph with positive integer edge weights.

    Parameters
    ----------
    n:
        Number of nodes; nodes are ``0 .. n-1``.
    backend:
        ``"dict"``, ``"csr"`` or ``"auto"`` (default); see the module
        docstring.  ``"csr"`` requires numpy.  Backend selection, the frozen
        CSR view and the batched kernels are specified in DESIGN.md §4; all
        backends are bit-identical in results (only wall-clock differs).
    """

    def __init__(self, n: int, backend: str = "auto") -> None:
        if n <= 0:
            raise ValueError("a graph needs at least one node")
        if backend not in _BACKENDS:
            raise ValueError(f"unknown backend {backend!r}; expected one of {_BACKENDS}")
        if backend in ("csr", "csr-njit") and not _HAS_NUMPY:
            raise ValueError(f"the {backend!r} backend requires numpy")
        self._n = n
        self._adjacency: list[dict[int, int]] = [dict() for _ in range(n)]
        self._edge_count = 0
        self._backend_choice = backend
        self._csr = None
        self._hop_diameter: float | None = None
        self._version = 0
        self._deltas: deque[GraphDelta] = deque(maxlen=DELTA_LOG_LIMIT)

    # ------------------------------------------------------------------ basic
    @property
    def backend(self) -> str:
        """The resolved traversal backend (``"dict"``, ``"csr"`` or ``"csr-njit"``).

        ``"auto"`` prefers the compiled plane whenever one of its accelerators
        (numba or scipy) is importable, then CSR whenever numpy is.  An
        explicit ``"csr-njit"`` resolves to itself even with no accelerator
        present: the compiled plane then degrades per kernel to the numpy
        implementations, so the choice is always safe.
        """
        if self._backend_choice == "auto":
            if not _HAS_NUMPY:
                return "dict"
            from repro.graphs import compiled

            return "csr-njit" if compiled.available() else "csr"
        return self._backend_choice

    @property
    def version(self) -> int:
        """Mutation counter: incremented by every effective mutation.

        ``add_edge`` (on a new edge or with a changed weight), ``remove_edge``
        and ``update_weight`` each bump it exactly once and append one
        :class:`GraphDelta` to the log; a no-op mutation (re-adding an edge at
        its current weight) bumps nothing.  Derived caches outside the graph
        (the network's hop-diameter cache, a session's preprocessing cache)
        compare the version they were built at against the current one -- the
        same freeze/invalidate discipline the internal CSR view uses.
        """
        return self._version

    def deltas_since(self, version: int) -> list[GraphDelta] | None:
        """The mutations applied after ``version``, oldest first.

        Returns ``[]`` when ``version`` is current, and None when the history
        back to ``version`` is not fully available (the log evicted it, or
        ``version`` is from a different graph's counter) -- the caller must
        then treat the graph as arbitrarily changed (DESIGN.md §12).
        """
        if version == self._version:
            return []
        if version > self._version or self._version - version > len(self._deltas):
            return None
        return [delta for delta in self._deltas if delta.version > version]

    def csr(self):
        """The frozen CSR view (built on first use, dropped on mutation)."""
        from repro.graphs import csr as csr_backend

        if self._csr is None:
            self._csr = csr_backend.build_csr(self._adjacency)
        return self._csr

    @property
    def node_count(self) -> int:
        """Number of nodes ``n``."""
        return self._n

    @property
    def edge_count(self) -> int:
        """Number of undirected edges."""
        return self._edge_count

    def nodes(self) -> range:
        """Iterable over all node IDs."""
        return range(self._n)

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the undirected edge ``{u, v}`` exists."""
        return v in self._adjacency[u]

    def add_edge(self, u: int, v: int, weight: int = 1) -> None:
        """Insert the undirected edge ``{u, v}``, or update its weight.

        Weights must be positive integers; the paper assumes ``w : E -> [W]``
        with ``W`` polynomial in ``n`` so that a weight fits in one message.

        Duplicate-edge semantics (pinned, DESIGN.md §12): adding an edge that
        already exists is exactly :meth:`update_weight` -- the weight is
        *replaced*, never accumulated, and re-adding at the current weight is
        a no-op that bumps neither :attr:`version` nor the delta log and
        leaves every frozen cache intact.
        """
        self._check_node(u)
        self._check_node(v)
        if u == v:
            raise ValueError("self loops are not allowed")
        if weight <= 0:
            raise ValueError("edge weights must be positive")
        if v in self._adjacency[u]:
            self.update_weight(u, v, weight)
            return
        self._edge_count += 1
        self._adjacency[u][v] = weight
        self._adjacency[v][u] = weight
        self._csr = None
        self._hop_diameter = None
        self._version += 1
        self._deltas.append(GraphDelta("add", u, v, weight, None, self._version))

    def update_weight(self, u: int, v: int, weight: int) -> None:
        """Set the weight of the existing undirected edge ``{u, v}``.

        A weight-only mutation leaves the hop topology untouched, so the
        hop-diameter cache survives and a frozen CSR view is refreshed in
        place (:func:`repro.graphs.csr.refresh_weight` patches the weight
        array and shares the topology arrays) instead of being dropped and
        rebuilt.  Setting the current weight again is a no-op: no version
        bump, no delta, no cache work (DESIGN.md §12).
        """
        self._check_node(u)
        self._check_node(v)
        current = self._adjacency[u].get(v)
        if current is None:
            raise KeyError(f"edge {{{u}, {v}}} does not exist")
        if weight <= 0:
            raise ValueError("edge weights must be positive")
        if weight == current:
            return
        self._adjacency[u][v] = weight
        self._adjacency[v][u] = weight
        if self._csr is not None:
            from repro.graphs import csr as csr_backend

            self._csr = csr_backend.refresh_weight(self._csr, u, v, weight)
        self._version += 1
        self._deltas.append(GraphDelta("update", u, v, weight, current, self._version))

    def remove_edge(self, u: int, v: int) -> None:
        """Delete the undirected edge ``{u, v}`` (must exist)."""
        if v not in self._adjacency[u]:
            raise KeyError(f"edge {{{u}, {v}}} does not exist")
        old_weight = self._adjacency[u][v]
        del self._adjacency[u][v]
        del self._adjacency[v][u]
        self._edge_count -= 1
        self._csr = None
        self._hop_diameter = None
        self._version += 1
        self._deltas.append(GraphDelta("remove", u, v, None, old_weight, self._version))

    def weight(self, u: int, v: int) -> int:
        """Weight of the edge ``{u, v}`` (must exist)."""
        return self._adjacency[u][v]

    def neighbors(self, u: int) -> Iterator[int]:
        """Iterate over the neighbours of ``u``."""
        return iter(self._adjacency[u])

    def neighbor_items(self, u: int) -> Iterator[tuple[int, int]]:
        """Iterate over ``(neighbour, weight)`` pairs of ``u``."""
        return iter(self._adjacency[u].items())

    def degree(self, u: int) -> int:
        """Number of neighbours of ``u``."""
        return len(self._adjacency[u])

    def max_degree(self) -> int:
        """Maximum degree over all nodes."""
        return max(len(adj) for adj in self._adjacency)

    def edges(self) -> Iterator[tuple[int, int, int]]:
        """Iterate over undirected edges as ``(u, v, weight)`` with ``u < v``."""
        for u in range(self._n):
            for v, w in self._adjacency[u].items():
                if u < v:
                    yield (u, v, w)

    def max_weight(self) -> int:
        """Largest edge weight ``W`` (1 for an edgeless graph)."""
        best = 1
        for _, _, w in self.edges():
            if w > best:
                best = w
        return best

    def is_unweighted(self) -> bool:
        """Whether every edge has weight 1 (the paper's ``W = 1`` case)."""
        return all(w == 1 for _, _, w in self.edges())

    def total_weight(self) -> int:
        """Sum of all edge weights."""
        return sum(w for _, _, w in self.edges())

    def _check_node(self, u: int) -> None:
        if not 0 <= u < self._n:
            raise ValueError(f"node {u} outside [0, {self._n})")

    # ----------------------------------------------------------- traversal
    def bfs_hops(self, source: int, max_hops: int | None = None) -> dict[int, int]:
        """Hop distances from ``source`` to every node within ``max_hops`` hops.

        This is ``hop(source, ·)`` from Section 1.3 restricted to the ball of
        radius ``max_hops`` (or the whole component when ``max_hops`` is None).
        """
        self._check_node(source)
        distances = {source: 0}
        frontier = [source]
        hops = 0
        while frontier and (max_hops is None or hops < max_hops):
            hops += 1
            next_frontier: list[int] = []
            for u in frontier:
                for v in self._adjacency[u]:
                    if v not in distances:
                        distances[v] = hops
                        next_frontier.append(v)
            frontier = next_frontier
        return distances

    def ball(self, source: int, radius: int) -> list[int]:
        """The nodes within ``radius`` hops of ``source`` (including itself)."""
        return list(self.bfs_hops(source, radius))

    # ------------------------------------------------- batched traversal kernels
    #
    # The *_many methods advance every source together, one synchronous round
    # per iteration; under the CSR backend each round is a handful of numpy
    # gathers/reductions (see repro.graphs.csr), under the csr-njit backend
    # the matrix kernels run on the compiled plane (repro.graphs.compiled),
    # and under the dict backend they fall back to one pure-Python traversal
    # per source.  Results are bit-identical across all three.

    def _use_csr(self) -> bool:
        return self.backend != "dict"

    def _kernel_plane(self):
        """The module implementing the three matrix kernels for this backend."""
        if self.backend == "csr-njit":
            from repro.graphs import compiled

            return compiled
        from repro.graphs import csr as csr_backend

        return csr_backend

    def bfs_hops_many(
        self, sources: Sequence[int], max_hops: int | None = None
    ) -> list[dict[int, int]]:
        """``bfs_hops`` from many sources at once (one dict per source)."""
        sources = list(sources)
        for source in sources:
            self._check_node(source)
        if not self._use_csr():
            return [self.bfs_hops(source, max_hops) for source in sources]
        from repro.graphs import csr as csr_backend

        kernels = self._kernel_plane()
        view = self.csr()
        result: list[dict[int, int]] = []
        for chunk in csr_backend.chunked_sources(self._n, sources):
            levels = kernels.bfs_level_matrix(view, chunk, max_hops)
            result.extend(csr_backend.rows_to_dicts(levels, int))
        return result

    def balls_many(self, sources: Sequence[int], radius: int) -> list[list[int]]:
        """The ``radius``-hop balls of many sources at once."""
        return [list(hops) for hops in self.bfs_hops_many(sources, radius)]

    def hop_limited_distances_many(
        self, sources: Sequence[int], hop_limit: int
    ) -> list[dict[int, float]]:
        """The literal ``d_{hop_limit}`` maps of many sources (Section 1.3)."""
        sources = list(sources)
        if not self._use_csr():
            return [self.hop_limited_distances(source, hop_limit) for source in sources]
        matrix = self.hop_limited_distance_matrix(sources, hop_limit)
        from repro.graphs import csr as csr_backend

        return csr_backend.rows_to_dicts(matrix, float)

    def hop_limited_distance_matrix(self, sources: Sequence[int], hop_limit: int):
        """``d_{hop_limit}`` as a dense ``(len(sources), n)`` float matrix.

        Requires numpy (the dict backend densifies its per-source dicts).
        ``inf`` marks nodes outside the ``hop_limit``-ball.
        """
        if not _HAS_NUMPY:
            raise RuntimeError("hop_limited_distance_matrix requires numpy")
        sources = list(sources)
        for source in sources:
            self._check_node(source)
        if hop_limit < 0:
            raise ValueError("hop_limit must be non-negative")
        if self._use_csr():
            from repro.graphs import csr as csr_backend

            kernels = self._kernel_plane()
            view = self.csr()
            chunks = [
                kernels.hop_limited_matrix(view, chunk, hop_limit)
                for chunk in csr_backend.chunked_sources(self._n, sources)
            ]
            return chunks[0] if len(chunks) == 1 else _np.concatenate(chunks, axis=0)
        matrix = _np.full((len(sources), self._n), _np.inf)
        for row, source in enumerate(sources):
            for node, value in self.hop_limited_distances(source, hop_limit).items():
                matrix[row, node] = value
        return matrix

    def dijkstra_many(self, sources: Sequence[int]) -> list[dict[int, float]]:
        """Exact distances from many sources at once (one dict per source)."""
        sources = list(sources)
        if not self._use_csr():
            return [self.dijkstra(source) for source in sources]
        matrix = self.distance_matrix(sources)
        from repro.graphs import csr as csr_backend

        return csr_backend.rows_to_dicts(matrix, float)

    def distance_matrix(self, sources: Sequence[int] | None = None):
        """Exact distances as a dense ``(len(sources), n)`` float matrix.

        ``sources`` defaults to all nodes (the full APSP matrix).  Requires
        numpy; ``inf`` marks disconnected pairs.
        """
        if not _HAS_NUMPY:
            raise RuntimeError("distance_matrix requires numpy")
        sources = list(self.nodes()) if sources is None else list(sources)
        for source in sources:
            self._check_node(source)
        if self._use_csr():
            from repro.graphs import csr as csr_backend

            kernels = self._kernel_plane()
            view = self.csr()
            chunks = [
                kernels.distance_matrix(view, chunk)
                for chunk in csr_backend.chunked_sources(self._n, sources)
            ]
            return chunks[0] if len(chunks) == 1 else _np.concatenate(chunks, axis=0)
        matrix = _np.full((len(sources), self._n), _np.inf)
        for row, source in enumerate(sources):
            for node, value in self.dijkstra(source).items():
                matrix[row, node] = value
        return matrix

    def hop_eccentricities(
        self, sources: Sequence[int] | None = None, max_hops: int | None = None
    ) -> list[float]:
        """Hop eccentricities of many sources at once.

        Without ``max_hops`` this is :meth:`hop_eccentricity` per source
        (``inf`` when the graph is disconnected).  With ``max_hops`` it is the
        largest hop distance *observed inside the ball*, i.e. the per-node
        quantity ``h_v`` of Algorithm 9's local phase -- always finite.
        """
        sources = list(self.nodes()) if sources is None else list(sources)
        if not self._use_csr():
            result = []
            for source in sources:
                if max_hops is None:
                    result.append(self.hop_eccentricity(source))
                else:
                    result.append(float(max(self.bfs_hops(source, max_hops).values())))
            return result
        from repro.graphs import csr as csr_backend

        kernels = self._kernel_plane()
        view = self.csr()
        result: list[float] = []
        for chunk in csr_backend.chunked_sources(self._n, sources):
            levels = kernels.bfs_level_matrix(view, chunk, max_hops)
            if max_hops is None:
                reached_all = (levels >= 0).all(axis=1)
                maxima = levels.max(axis=1)
                result.extend(
                    float(m) if ok else INFINITY
                    for m, ok in zip(maxima.tolist(), reached_all.tolist(), strict=True)
                )
            else:
                result.extend(float(m) for m in levels.max(axis=1).tolist())
        return result

    def hop_distance(self, u: int, v: int) -> float:
        """``hop(u, v)``: the minimum number of edges on a u-v path."""
        if u == v:
            return 0
        distances = self.bfs_hops(u)
        return distances.get(v, INFINITY)

    def hop_eccentricity(self, u: int) -> float:
        """Largest hop distance from ``u`` to any node (infinite if disconnected)."""
        distances = self.bfs_hops(u)
        if len(distances) != self._n:
            return INFINITY
        return max(distances.values())

    def hop_diameter(self) -> float:
        """``D(G)``: the maximum hop distance over all pairs (Section 1.3).

        Cached like the CSR view (every simulated network on this graph asks
        for it) and dropped on mutation.
        """
        if self._hop_diameter is not None:
            return self._hop_diameter
        if self._use_csr():
            best = 0.0
            for ecc in self.hop_eccentricities():
                if ecc == INFINITY:
                    best = INFINITY
                    break
                best = max(best, ecc)
        else:
            best = 0.0
            for u in range(self._n):
                ecc = self.hop_eccentricity(u)
                if ecc == INFINITY:
                    best = INFINITY
                    break
                best = max(best, ecc)
        self._hop_diameter = best
        return best

    def is_connected(self) -> bool:
        """Whether the graph is connected (the paper assumes ``G`` connected)."""
        return len(self.bfs_hops(0)) == self._n

    def connected_components(self) -> list[list[int]]:
        """List of connected components (each a sorted list of nodes)."""
        seen = [False] * self._n
        components: list[list[int]] = []
        for start in range(self._n):
            if seen[start]:
                continue
            component = []
            stack = [start]
            seen[start] = True
            while stack:
                u = stack.pop()
                component.append(u)
                for v in self._adjacency[u]:
                    if not seen[v]:
                        seen[v] = True
                        stack.append(v)
            components.append(sorted(component))
        return components

    # ----------------------------------------------------------- distances
    def dijkstra(self, source: int, targets: Sequence[int] | None = None) -> dict[int, float]:
        """Exact weighted distances ``d(source, ·)`` via Dijkstra.

        If ``targets`` is given, the search may stop early once all targets are
        settled; the returned dict still contains every settled node.
        """
        self._check_node(source)
        remaining = set(targets) if targets is not None else None
        dist: dict[int, float] = {source: 0.0}
        settled: dict[int, float] = {}
        heap: list[tuple[float, int]] = [(0.0, source)]
        while heap:
            d, u = heapq.heappop(heap)
            if u in settled:
                continue
            settled[u] = d
            if remaining is not None:
                remaining.discard(u)
                if not remaining:
                    break
            for v, w in self._adjacency[u].items():
                nd = d + w
                if nd < dist.get(v, INFINITY):
                    dist[v] = nd
                    heapq.heappush(heap, (nd, v))
        return settled

    def dijkstra_with_parents(self, source: int) -> tuple[dict[int, float], dict[int, int]]:
        """Exact distances plus a shortest-path-tree parent pointer per node."""
        self._check_node(source)
        dist: dict[int, float] = {source: 0.0}
        parent: dict[int, int] = {}
        settled: dict[int, float] = {}
        heap: list[tuple[float, int]] = [(0.0, source)]
        while heap:
            d, u = heapq.heappop(heap)
            if u in settled:
                continue
            settled[u] = d
            for v, w in self._adjacency[u].items():
                nd = d + w
                if nd < dist.get(v, INFINITY):
                    dist[v] = nd
                    parent[v] = u
                    heapq.heappush(heap, (nd, v))
        return settled, parent

    def hop_limited_distances(self, source: int, hop_limit: int) -> dict[int, float]:
        """``d_h(source, ·)``: cheapest walk weight using at most ``hop_limit`` edges.

        Implemented as ``hop_limit`` rounds of synchronous Bellman-Ford where
        only nodes whose value improved in the previous round relax their
        edges -- the relaxation never leaves the ``hop_limit``-ball, so no
        post-hoc filtering (and no per-round copy of the whole reached set) is
        needed.  Nodes not reachable within the hop limit are absent from the
        result (``d_h = ∞``).
        """
        self._check_node(source)
        if hop_limit < 0:
            raise ValueError("hop_limit must be non-negative")
        distances: dict[int, float] = {source: 0.0}
        frontier: dict[int, float] = {source: 0.0}
        for _ in range(hop_limit):
            if not frontier:
                break
            improvements: dict[int, float] = {}
            for u, du in frontier.items():
                for v, w in self._adjacency[u].items():
                    nd = du + w
                    if nd < distances.get(v, INFINITY) and nd < improvements.get(v, INFINITY):
                        improvements[v] = nd
            frontier = {}
            for v, nd in improvements.items():
                if nd < distances.get(v, INFINITY):
                    distances[v] = nd
                    frontier[v] = nd
        return distances

    def shortest_distances_within_hops(self, source: int, hop_limit: int) -> dict[int, float]:
        """Exact distances to nodes whose shortest path uses at most ``hop_limit`` edges.

        Runs a lexicographic Dijkstra minimising ``(weight, hops)``.  Relation
        to ``d_h`` (Section 1.3): every node whose (minimum-hop) shortest path
        fits in the hop budget is returned with its *exact* distance, which for
        those nodes equals ``d_h(source, ·)`` -- this covers every case the
        HYBRID algorithms rely on (consecutive skeleton nodes, connectors,
        "close" pairs).  A node may also be returned with the weight of some
        other ``≤ hop_limit``-hop path (an upper bound ``≥ d``), and nodes only
        reachable within the hop budget via paths this search pruned are
        omitted; in both situations the value ``d_h`` would itself be a strict
        over-estimate of the distance and the algorithms only ever use it as
        one candidate inside a minimum, so the difference never changes their
        output (see DESIGN.md, fidelity policy).  This is the simulation-side
        fast path; :meth:`hop_limited_distances` computes the literal ``d_h``.
        """
        self._check_node(source)
        if hop_limit < 0:
            raise ValueError("hop_limit must be non-negative")
        dist: dict[int, tuple[float, int]] = {source: (0.0, 0)}
        settled: dict[int, float] = {}
        heap: list[tuple[float, int, int]] = [(0.0, 0, source)]
        while heap:
            d, hops, u = heapq.heappop(heap)
            if u in settled:
                continue
            if hops <= hop_limit:
                settled[u] = d
            # Even when u exceeds the hop budget we keep relaxing: a later node
            # might still be reachable within budget through a different path
            # already in the heap, but never through u, so skip its edges.
            if hops >= hop_limit:
                continue
            for v, w in self._adjacency[u].items():
                nd = d + w
                nh = hops + 1
                best = dist.get(v)
                if best is None or (nd, nh) < best:
                    dist[v] = (nd, nh)
                    heapq.heappush(heap, (nd, nh, v))
        return settled

    def shortest_path_hops(self, source: int, target: int) -> list[int] | None:
        """One shortest u-v path in *hops* (None if disconnected)."""
        if source == target:
            return [source]
        parents: dict[int, int] = {source: source}
        frontier = [source]
        while frontier:
            next_frontier: list[int] = []
            for u in frontier:
                for v in self._adjacency[u]:
                    if v not in parents:
                        parents[v] = u
                        if v == target:
                            path = [v]
                            while path[-1] != source:
                                path.append(parents[path[-1]])
                            return list(reversed(path))
                        next_frontier.append(v)
            frontier = next_frontier
        return None

    # ----------------------------------------------------------- conversion
    def subgraph(self, nodes: Sequence[int]) -> tuple["WeightedGraph", dict[int, int]]:
        """Induced subgraph on ``nodes``.

        Returns the subgraph (relabelled ``0 .. len(nodes)-1``) and the mapping
        from original node ID to new ID.
        """
        mapping = {node: index for index, node in enumerate(nodes)}
        sub = WeightedGraph(len(nodes), backend=self._backend_choice)
        for u in nodes:
            for v, w in self._adjacency[u].items():
                if v in mapping and u < v:
                    sub.add_edge(mapping[u], mapping[v], w)
        return sub, mapping

    def copy(self) -> "WeightedGraph":
        """Deep copy of the graph (keeps the backend choice)."""
        clone = WeightedGraph(self._n, backend=self._backend_choice)
        for u, v, w in self.edges():
            clone.add_edge(u, v, w)
        return clone

    def to_networkx(self):
        """Convert to a :class:`networkx.Graph` (for cross-checking in tests)."""
        import networkx as nx

        graph = nx.Graph()
        graph.add_nodes_from(range(self._n))
        for u, v, w in self.edges():
            graph.add_edge(u, v, weight=w)
        return graph

    @classmethod
    def from_networkx(cls, graph) -> "WeightedGraph":
        """Build from a :class:`networkx.Graph` with integer node labels 0..n-1."""
        n = graph.number_of_nodes()
        result = cls(n)
        for u, v, data in graph.edges(data=True):
            result.add_edge(int(u), int(v), int(data.get("weight", 1)))
        return result

    @classmethod
    def from_edges(
        cls, n: int, edges: Iterable[tuple[int, int, int]], backend: str = "auto"
    ) -> "WeightedGraph":
        """Build from an iterable of ``(u, v, weight)`` triples."""
        result = cls(n, backend=backend)
        for u, v, w in edges:
            result.add_edge(u, v, w)
        return result

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"WeightedGraph(n={self._n}, m={self._edge_count})"
