"""Weighted graph kernel used by every layer of the library.

The paper's local communication graph ``G = (V, E)`` is an undirected graph
with integer edge weights ``w : E -> [W]`` where ``W`` is at most polynomial in
``n`` (Section 1.3).  :class:`WeightedGraph` is a small, dependency-free
adjacency structure with exactly the operations the HYBRID algorithms need:

* neighbourhood queries (the LOCAL mode),
* hop-limited breadth-first search (``hop(u, v)`` and ``h``-hop balls),
* hop-limited weighted distances ``d_h(u, v)`` (Section 1.3), and
* conversions to/from :mod:`networkx` for cross-checking in tests.

Nodes are always the integers ``0 .. n-1``; the paper identifies nodes with IDs
``[n]`` and several protocols (hashing to intermediate nodes, implicit
aggregation trees) rely on the ID space being exactly ``[0, n)``.
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

INFINITY = float("inf")


class WeightedGraph:
    """An undirected graph with positive integer edge weights.

    Parameters
    ----------
    n:
        Number of nodes; nodes are ``0 .. n-1``.
    """

    def __init__(self, n: int) -> None:
        if n <= 0:
            raise ValueError("a graph needs at least one node")
        self._n = n
        self._adjacency: List[Dict[int, int]] = [dict() for _ in range(n)]
        self._edge_count = 0

    # ------------------------------------------------------------------ basic
    @property
    def node_count(self) -> int:
        """Number of nodes ``n``."""
        return self._n

    @property
    def edge_count(self) -> int:
        """Number of undirected edges."""
        return self._edge_count

    def nodes(self) -> range:
        """Iterable over all node IDs."""
        return range(self._n)

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the undirected edge ``{u, v}`` exists."""
        return v in self._adjacency[u]

    def add_edge(self, u: int, v: int, weight: int = 1) -> None:
        """Insert (or overwrite) the undirected edge ``{u, v}``.

        Weights must be positive integers; the paper assumes ``w : E -> [W]``
        with ``W`` polynomial in ``n`` so that a weight fits in one message.
        """
        self._check_node(u)
        self._check_node(v)
        if u == v:
            raise ValueError("self loops are not allowed")
        if weight <= 0:
            raise ValueError("edge weights must be positive")
        if v not in self._adjacency[u]:
            self._edge_count += 1
        self._adjacency[u][v] = weight
        self._adjacency[v][u] = weight

    def remove_edge(self, u: int, v: int) -> None:
        """Delete the undirected edge ``{u, v}`` (must exist)."""
        if v not in self._adjacency[u]:
            raise KeyError(f"edge {{{u}, {v}}} does not exist")
        del self._adjacency[u][v]
        del self._adjacency[v][u]
        self._edge_count -= 1

    def weight(self, u: int, v: int) -> int:
        """Weight of the edge ``{u, v}`` (must exist)."""
        return self._adjacency[u][v]

    def neighbors(self, u: int) -> Iterator[int]:
        """Iterate over the neighbours of ``u``."""
        return iter(self._adjacency[u])

    def neighbor_items(self, u: int) -> Iterator[Tuple[int, int]]:
        """Iterate over ``(neighbour, weight)`` pairs of ``u``."""
        return iter(self._adjacency[u].items())

    def degree(self, u: int) -> int:
        """Number of neighbours of ``u``."""
        return len(self._adjacency[u])

    def max_degree(self) -> int:
        """Maximum degree over all nodes."""
        return max(len(adj) for adj in self._adjacency)

    def edges(self) -> Iterator[Tuple[int, int, int]]:
        """Iterate over undirected edges as ``(u, v, weight)`` with ``u < v``."""
        for u in range(self._n):
            for v, w in self._adjacency[u].items():
                if u < v:
                    yield (u, v, w)

    def max_weight(self) -> int:
        """Largest edge weight ``W`` (1 for an edgeless graph)."""
        best = 1
        for _, _, w in self.edges():
            if w > best:
                best = w
        return best

    def is_unweighted(self) -> bool:
        """Whether every edge has weight 1 (the paper's ``W = 1`` case)."""
        return all(w == 1 for _, _, w in self.edges())

    def total_weight(self) -> int:
        """Sum of all edge weights."""
        return sum(w for _, _, w in self.edges())

    def _check_node(self, u: int) -> None:
        if not 0 <= u < self._n:
            raise ValueError(f"node {u} outside [0, {self._n})")

    # ----------------------------------------------------------- traversal
    def bfs_hops(self, source: int, max_hops: Optional[int] = None) -> Dict[int, int]:
        """Hop distances from ``source`` to every node within ``max_hops`` hops.

        This is ``hop(source, ·)`` from Section 1.3 restricted to the ball of
        radius ``max_hops`` (or the whole component when ``max_hops`` is None).
        """
        self._check_node(source)
        distances = {source: 0}
        frontier = [source]
        hops = 0
        while frontier and (max_hops is None or hops < max_hops):
            hops += 1
            next_frontier: List[int] = []
            for u in frontier:
                for v in self._adjacency[u]:
                    if v not in distances:
                        distances[v] = hops
                        next_frontier.append(v)
            frontier = next_frontier
        return distances

    def ball(self, source: int, radius: int) -> List[int]:
        """The nodes within ``radius`` hops of ``source`` (including itself)."""
        return list(self.bfs_hops(source, radius))

    def hop_distance(self, u: int, v: int) -> float:
        """``hop(u, v)``: the minimum number of edges on a u-v path."""
        if u == v:
            return 0
        distances = self.bfs_hops(u)
        return distances.get(v, INFINITY)

    def hop_eccentricity(self, u: int) -> float:
        """Largest hop distance from ``u`` to any node (infinite if disconnected)."""
        distances = self.bfs_hops(u)
        if len(distances) != self._n:
            return INFINITY
        return max(distances.values())

    def hop_diameter(self) -> float:
        """``D(G)``: the maximum hop distance over all pairs (Section 1.3)."""
        best = 0.0
        for u in range(self._n):
            ecc = self.hop_eccentricity(u)
            if ecc == INFINITY:
                return INFINITY
            best = max(best, ecc)
        return best

    def is_connected(self) -> bool:
        """Whether the graph is connected (the paper assumes ``G`` connected)."""
        return len(self.bfs_hops(0)) == self._n

    def connected_components(self) -> List[List[int]]:
        """List of connected components (each a sorted list of nodes)."""
        seen = [False] * self._n
        components: List[List[int]] = []
        for start in range(self._n):
            if seen[start]:
                continue
            component = []
            stack = [start]
            seen[start] = True
            while stack:
                u = stack.pop()
                component.append(u)
                for v in self._adjacency[u]:
                    if not seen[v]:
                        seen[v] = True
                        stack.append(v)
            components.append(sorted(component))
        return components

    # ----------------------------------------------------------- distances
    def dijkstra(self, source: int, targets: Optional[Sequence[int]] = None) -> Dict[int, float]:
        """Exact weighted distances ``d(source, ·)`` via Dijkstra.

        If ``targets`` is given, the search may stop early once all targets are
        settled; the returned dict still contains every settled node.
        """
        self._check_node(source)
        remaining = set(targets) if targets is not None else None
        dist: Dict[int, float] = {source: 0.0}
        settled: Dict[int, float] = {}
        heap: List[Tuple[float, int]] = [(0.0, source)]
        while heap:
            d, u = heapq.heappop(heap)
            if u in settled:
                continue
            settled[u] = d
            if remaining is not None:
                remaining.discard(u)
                if not remaining:
                    break
            for v, w in self._adjacency[u].items():
                nd = d + w
                if nd < dist.get(v, INFINITY):
                    dist[v] = nd
                    heapq.heappush(heap, (nd, v))
        return settled

    def dijkstra_with_parents(self, source: int) -> Tuple[Dict[int, float], Dict[int, int]]:
        """Exact distances plus a shortest-path-tree parent pointer per node."""
        self._check_node(source)
        dist: Dict[int, float] = {source: 0.0}
        parent: Dict[int, int] = {}
        settled: Dict[int, float] = {}
        heap: List[Tuple[float, int]] = [(0.0, source)]
        while heap:
            d, u = heapq.heappop(heap)
            if u in settled:
                continue
            settled[u] = d
            for v, w in self._adjacency[u].items():
                nd = d + w
                if nd < dist.get(v, INFINITY):
                    dist[v] = nd
                    parent[v] = u
                    heapq.heappush(heap, (nd, v))
        return settled, parent

    def hop_limited_distances(self, source: int, hop_limit: int) -> Dict[int, float]:
        """``d_h(source, ·)``: cheapest path weight using at most ``hop_limit`` edges.

        Implemented as ``hop_limit`` rounds of Bellman-Ford restricted to the
        ball of radius ``hop_limit`` around the source.  Nodes not reachable
        within the hop limit are absent from the result (``d_h = ∞``).
        """
        self._check_node(source)
        if hop_limit < 0:
            raise ValueError("hop_limit must be non-negative")
        ball = self.ball(source, hop_limit)
        current: Dict[int, float] = {source: 0.0}
        for _ in range(hop_limit):
            updated = dict(current)
            changed = False
            for u, du in current.items():
                for v, w in self._adjacency[u].items():
                    nd = du + w
                    if nd < updated.get(v, INFINITY):
                        updated[v] = nd
                        changed = True
            current = updated
            if not changed:
                break
        ball_set = set(ball)
        return {v: d for v, d in current.items() if v in ball_set}

    def shortest_distances_within_hops(self, source: int, hop_limit: int) -> Dict[int, float]:
        """Exact distances to nodes whose shortest path uses at most ``hop_limit`` edges.

        Runs a lexicographic Dijkstra minimising ``(weight, hops)``.  Relation
        to ``d_h`` (Section 1.3): every node whose (minimum-hop) shortest path
        fits in the hop budget is returned with its *exact* distance, which for
        those nodes equals ``d_h(source, ·)`` -- this covers every case the
        HYBRID algorithms rely on (consecutive skeleton nodes, connectors,
        "close" pairs).  A node may also be returned with the weight of some
        other ``≤ hop_limit``-hop path (an upper bound ``≥ d``), and nodes only
        reachable within the hop budget via paths this search pruned are
        omitted; in both situations the value ``d_h`` would itself be a strict
        over-estimate of the distance and the algorithms only ever use it as
        one candidate inside a minimum, so the difference never changes their
        output (see DESIGN.md, fidelity policy).  This is the simulation-side
        fast path; :meth:`hop_limited_distances` computes the literal ``d_h``.
        """
        self._check_node(source)
        if hop_limit < 0:
            raise ValueError("hop_limit must be non-negative")
        dist: Dict[int, Tuple[float, int]] = {source: (0.0, 0)}
        settled: Dict[int, float] = {}
        heap: List[Tuple[float, int, int]] = [(0.0, 0, source)]
        while heap:
            d, hops, u = heapq.heappop(heap)
            if u in settled:
                continue
            if hops <= hop_limit:
                settled[u] = d
            # Even when u exceeds the hop budget we keep relaxing: a later node
            # might still be reachable within budget through a different path
            # already in the heap, but never through u, so skip its edges.
            if hops >= hop_limit:
                continue
            for v, w in self._adjacency[u].items():
                nd = d + w
                nh = hops + 1
                best = dist.get(v)
                if best is None or (nd, nh) < best:
                    dist[v] = (nd, nh)
                    heapq.heappush(heap, (nd, nh, v))
        return settled

    def shortest_path_hops(self, source: int, target: int) -> Optional[List[int]]:
        """One shortest u-v path in *hops* (None if disconnected)."""
        if source == target:
            return [source]
        parents: Dict[int, int] = {source: source}
        frontier = [source]
        while frontier:
            next_frontier: List[int] = []
            for u in frontier:
                for v in self._adjacency[u]:
                    if v not in parents:
                        parents[v] = u
                        if v == target:
                            path = [v]
                            while path[-1] != source:
                                path.append(parents[path[-1]])
                            return list(reversed(path))
                        next_frontier.append(v)
            frontier = next_frontier
        return None

    # ----------------------------------------------------------- conversion
    def subgraph(self, nodes: Sequence[int]) -> Tuple["WeightedGraph", Dict[int, int]]:
        """Induced subgraph on ``nodes``.

        Returns the subgraph (relabelled ``0 .. len(nodes)-1``) and the mapping
        from original node ID to new ID.
        """
        mapping = {node: index for index, node in enumerate(nodes)}
        sub = WeightedGraph(len(nodes))
        for u in nodes:
            for v, w in self._adjacency[u].items():
                if v in mapping and u < v:
                    sub.add_edge(mapping[u], mapping[v], w)
        return sub, mapping

    def copy(self) -> "WeightedGraph":
        """Deep copy of the graph."""
        clone = WeightedGraph(self._n)
        for u, v, w in self.edges():
            clone.add_edge(u, v, w)
        return clone

    def to_networkx(self):
        """Convert to a :class:`networkx.Graph` (for cross-checking in tests)."""
        import networkx as nx

        graph = nx.Graph()
        graph.add_nodes_from(range(self._n))
        for u, v, w in self.edges():
            graph.add_edge(u, v, weight=w)
        return graph

    @classmethod
    def from_networkx(cls, graph) -> "WeightedGraph":
        """Build from a :class:`networkx.Graph` with integer node labels 0..n-1."""
        n = graph.number_of_nodes()
        result = cls(n)
        for u, v, data in graph.edges(data=True):
            result.add_edge(int(u), int(v), int(data.get("weight", 1)))
        return result

    @classmethod
    def from_edges(cls, n: int, edges: Iterable[Tuple[int, int, int]]) -> "WeightedGraph":
        """Build from an iterable of ``(u, v, weight)`` triples."""
        result = cls(n)
        for u, v, w in edges:
            result.add_edge(u, v, w)
        return result

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"WeightedGraph(n={self._n}, m={self._edge_count})"
