"""Sequential reference algorithms (ground truth for every distributed result).

The distributed algorithms in :mod:`repro.core` are validated against these
centralised computations: exact single-source / all-pairs distances, weighted
and hop diameters, eccentricities and shortest-path diameters.  They are the
"oracle" in tests and in the approximation-ratio measurements of
EXPERIMENTS.md, so they are written for clarity rather than speed.
"""

from __future__ import annotations


from collections.abc import Iterable, Mapping, Sequence
from repro.graphs.graph import INFINITY, WeightedGraph


def single_source_distances(graph: WeightedGraph, source: int) -> dict[int, float]:
    """Exact weighted distances from ``source`` to every reachable node."""
    return graph.dijkstra(source)


def multi_source_distances(
    graph: WeightedGraph, sources: Sequence[int]
) -> dict[int, dict[int, float]]:
    """Exact distances from every source: ``result[s][v] = d(s, v)``.

    One batched kernel call; under the CSR backend all sources advance
    together instead of one Python-level Dijkstra per source.
    """
    sources = list(sources)
    return dict(zip(sources, graph.dijkstra_many(sources), strict=True))


def all_pairs_distances(graph: WeightedGraph) -> dict[int, dict[int, float]]:
    """Exact APSP by running Dijkstra from every node."""
    return multi_source_distances(graph, list(graph.nodes()))


def eccentricity(graph: WeightedGraph, node: int, weighted: bool = False) -> float:
    """Eccentricity ``e(v) = max_u d(v, u)`` (weighted or in hops)."""
    if weighted:
        distances = graph.dijkstra(node)
    else:
        distances = {v: float(d) for v, d in graph.bfs_hops(node).items()}
    if len(distances) != graph.node_count:
        return INFINITY
    return max(distances.values())


def hop_diameter(graph: WeightedGraph) -> float:
    """The paper's diameter ``D(G) = max_{u,v} hop(u, v)`` (Section 1.3)."""
    return graph.hop_diameter()


def weighted_diameter(graph: WeightedGraph) -> float:
    """The weighted diameter ``max_{u,v} d(u, v)`` used in Section 7."""
    best = 0.0
    for distances in graph.dijkstra_many(graph.nodes()):
        if len(distances) != graph.node_count:
            return INFINITY
        best = max(best, max(distances.values()))
    return best


def shortest_path_diameter(graph: WeightedGraph) -> int:
    """The shortest-path diameter ``SPD``: max hop count of any shortest path.

    This is the parameter in the ``Õ(√SPD)`` SSSP algorithm of Augustine et
    al. that Theorem 1.3 improves on for graphs where ``SPD`` is large.  For
    each source we run a Dijkstra variant that tracks, per node, the minimum
    number of hops over all minimum-weight paths.
    """
    spd = 0
    for source in graph.nodes():
        hops = _min_hops_on_shortest_paths(graph, source)
        if hops:
            spd = max(spd, max(hops.values()))
    return spd


def _min_hops_on_shortest_paths(graph: WeightedGraph, source: int) -> dict[int, int]:
    """For each node, the fewest hops among all shortest weighted paths from source."""
    import heapq

    dist: dict[int, float] = {source: 0.0}
    hops: dict[int, int] = {source: 0}
    heap: list[tuple[float, int, int]] = [(0.0, 0, source)]
    settled: dict[int, int] = {}
    while heap:
        d, h, u = heapq.heappop(heap)
        if u in settled:
            continue
        settled[u] = h
        for v, w in graph.neighbor_items(u):
            nd = d + w
            nh = h + 1
            known = dist.get(v, INFINITY)
            if nd < known or (nd == known and nh < hops.get(v, 1 << 60)):
                dist[v] = nd
                hops[v] = nh
                heapq.heappush(heap, (nd, nh, v))
    return settled


def distances_as_matrix(
    graph: WeightedGraph, distances: Mapping[int, Mapping[int, float]]
) -> list[list[float]]:
    """Convert a nested distance dict into a dense ``n x n`` matrix (∞ if absent)."""
    n = graph.node_count
    matrix = [[INFINITY] * n for _ in range(n)]
    for u in range(n):
        matrix[u][u] = 0.0
        row = distances.get(u, {})
        for v, d in row.items():
            matrix[u][v] = d
    return matrix


def max_absolute_error(
    expected: Mapping[int, float], actual: Mapping[int, float], keys: Iterable[int] | None = None
) -> float:
    """Largest absolute difference between two distance maps over ``keys``."""
    if keys is None:
        keys = expected.keys()
    worst = 0.0
    for key in keys:
        e = expected.get(key, INFINITY)
        a = actual.get(key, INFINITY)
        if e == INFINITY and a == INFINITY:
            continue
        if e == INFINITY or a == INFINITY:
            return INFINITY
        worst = max(worst, abs(e - a))
    return worst


def max_stretch(
    expected: Mapping[int, float], actual: Mapping[int, float], keys: Iterable[int] | None = None
) -> float:
    """Largest ratio ``actual / expected`` over ``keys`` (ignoring zero distances).

    The paper's approximation guarantees are one-sided (``d <= d̃ <= α d + β``);
    benchmarks report this multiplicative stretch together with
    :func:`has_one_sided_error`.
    """
    if keys is None:
        keys = expected.keys()
    worst = 1.0
    for key in keys:
        e = expected.get(key, INFINITY)
        a = actual.get(key, INFINITY)
        if e in (0.0, INFINITY):
            continue
        if a == INFINITY:
            return INFINITY
        worst = max(worst, a / e)
    return worst


def has_one_sided_error(
    expected: Mapping[int, float],
    actual: Mapping[int, float],
    keys: Iterable[int] | None = None,
    tolerance: float = 1e-9,
) -> bool:
    """Check the paper's approximation contract: estimates never undershoot."""
    if keys is None:
        keys = expected.keys()
    for key in keys:
        e = expected.get(key, INFINITY)
        a = actual.get(key, INFINITY)
        if a == INFINITY:
            continue
        if e == INFINITY:
            return False
        if a < e - tolerance:
            return False
    return True
