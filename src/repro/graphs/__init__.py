"""Graph kernel: the local communication graph ``G`` and everything offline about it.

Public surface:

* :class:`~repro.graphs.graph.WeightedGraph` -- the adjacency structure used by
  the whole library, with selectable dict/CSR traversal backends and batched
  multi-source kernels (DESIGN.md §4).
* :mod:`repro.graphs.csr` -- the frozen numpy CSR view and its kernels.
* :mod:`repro.graphs.generators` -- workload graph families.
* :mod:`repro.graphs.reference` -- sequential ground-truth algorithms.
* :mod:`repro.graphs.skeleton_analysis` -- offline audits of skeleton graphs
  (Appendix C).
"""

from repro.graphs import generators, reference, skeleton_analysis
from repro.graphs.graph import INFINITY, WeightedGraph

__all__ = ["WeightedGraph", "INFINITY", "generators", "reference", "skeleton_analysis"]
