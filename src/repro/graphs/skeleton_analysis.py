"""Offline analysis of skeleton graphs (Appendix C of the paper).

The skeleton graph ``S = (V_S, E_S)`` is the central structural tool of
Sections 3-5: sample nodes with probability ``1/x``, connect sampled nodes
within ``h ∈ Θ(x log n)`` hops with edges weighted by the ``h``-limited
distance.  Lemma C.1 states that sampled nodes appear on shortest paths at
least every ``h`` hops w.h.p.; Lemma C.2 that the skeleton is connected and
preserves distances exactly between sampled nodes.

These functions measure those properties on concrete graphs so E9 can report
them as a table (and so property-based tests can assert them).  They operate
on the *centralised* view of a skeleton; the distributed construction lives in
:mod:`repro.core.skeleton`.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass

from repro.graphs.graph import INFINITY, WeightedGraph
from repro.util.rand import RandomSource


def skeleton_hop_length(n: int, sampling_denominator: float, xi: float = 1.0) -> int:
    """The edge hop-length ``h = ξ · x · ln n`` of Lemma C.1 (clamped to ``[1, n]``).

    ``sampling_denominator`` is the ``x`` in "sample with probability 1/x".
    ``ξ`` is the w.h.p. constant; the asymptotic statement needs ``ξ ≥ 8c`` but
    simulations at a few hundred nodes use a smaller configurable value (see
    the fidelity policy in DESIGN.md) -- benchmarks record which ξ they used.
    """
    if n < 2:
        return 1
    h = int(math.ceil(xi * sampling_denominator * math.log(n)))
    return max(1, min(h, n))


def build_skeleton_offline(
    graph: WeightedGraph,
    skeleton_nodes: Sequence[int],
    hop_length: int,
) -> tuple[WeightedGraph, dict[int, int]]:
    """Centralised construction of the skeleton ``S`` on the given sampled nodes.

    Edges connect sampled nodes within ``hop_length`` hops, weighted by the
    ``hop_length``-limited distance ``d_h`` (Fact 4.3).  Returns the skeleton
    (relabelled ``0..|V_S|-1``) and the mapping original-id -> skeleton-id.
    """
    mapping = {node: index for index, node in enumerate(skeleton_nodes)}
    skeleton = WeightedGraph(max(1, len(skeleton_nodes)))
    skeleton_set = set(skeleton_nodes)
    all_limited = graph.hop_limited_distances_many(list(skeleton_nodes), hop_length)
    for node, limited in zip(skeleton_nodes, all_limited, strict=True):
        for other, dist in limited.items():
            if other in skeleton_set and other != node:
                u, v = mapping[node], mapping[other]
                weight = int(dist)
                if not skeleton.has_edge(u, v) or skeleton.weight(u, v) > weight:
                    if skeleton.has_edge(u, v):
                        skeleton.remove_edge(u, v)
                    skeleton.add_edge(u, v, max(1, weight))
    return skeleton, mapping


@dataclass
class SkeletonReport:
    """Measured skeleton properties for one (graph, sample) instance.

    Attributes
    ----------
    node_count:
        ``|V_S|``.
    edge_count:
        ``|E_S|``.
    connected:
        Whether ``S`` is connected (Lemma C.2 says it should be, w.h.p.).
    distance_preserving:
        Whether ``d_S(u, v) = d_G(u, v)`` for every sampled pair checked.
    max_distance_error:
        Largest ``d_S - d_G`` over the checked pairs (0 when preserving).
    max_gap_hops:
        Largest number of consecutive non-sampled hops observed on the checked
        shortest paths (Lemma C.1 says ``<= h`` w.h.p.).
    pairs_checked:
        Number of node pairs included in the path-gap / distance audit.
    """

    node_count: int
    edge_count: int
    connected: bool
    distance_preserving: bool
    max_distance_error: float
    max_gap_hops: int
    pairs_checked: int


def sample_gap_on_shortest_path(
    graph: WeightedGraph, sampled: Sequence[int], source: int, target: int
) -> int | None:
    """Largest run of consecutive non-sampled nodes on one shortest hop-path.

    Returns ``None`` when source and target are disconnected.  Lemma C.1 is a
    statement about *some* shortest path; auditing the BFS path gives a
    conservative (upper-bound) measurement of the gap.
    """
    path = graph.shortest_path_hops(source, target)
    if path is None:
        return None
    sampled_set = set(sampled)
    max_gap = 0
    current_gap = 0
    for node in path:
        if node in sampled_set:
            current_gap = 0
        else:
            current_gap += 1
            max_gap = max(max_gap, current_gap)
    return max_gap


def audit_skeleton(
    graph: WeightedGraph,
    skeleton_nodes: Sequence[int],
    hop_length: int,
    rng: RandomSource,
    pair_samples: int = 50,
) -> SkeletonReport:
    """Measure Lemma C.1/C.2 properties on a concrete skeleton.

    Distance preservation is checked on up to ``pair_samples`` random sampled
    pairs; the path-gap audit runs on the same pairs mapped back to ``G``.
    """
    skeleton, mapping = build_skeleton_offline(graph, skeleton_nodes, hop_length)
    connected = skeleton.node_count <= 1 or skeleton.is_connected()

    nodes = list(skeleton_nodes)
    pairs: list[tuple[int, int]] = []
    if len(nodes) >= 2:
        for _ in range(pair_samples):
            u = rng.choice(nodes)
            v = rng.choice(nodes)
            if u != v:
                pairs.append((u, v))

    max_error = 0.0
    preserving = True
    max_gap = 0
    for u, v in pairs:
        true_distances = graph.dijkstra(u, targets=[v])
        true_d = true_distances.get(v, INFINITY)
        skel_d = skeleton.dijkstra(mapping[u], targets=[mapping[v]]).get(mapping[v], INFINITY)
        if true_d == INFINITY:
            continue
        if skel_d == INFINITY:
            preserving = False
            max_error = INFINITY
        else:
            error = skel_d - true_d
            max_error = max(max_error, error)
            if error > 1e-9:
                preserving = False
        gap = sample_gap_on_shortest_path(graph, nodes, u, v)
        if gap is not None:
            max_gap = max(max_gap, gap)

    return SkeletonReport(
        node_count=skeleton.node_count if skeleton_nodes else 0,
        edge_count=skeleton.edge_count,
        connected=connected,
        distance_preserving=preserving,
        max_distance_error=max_error,
        max_gap_hops=max_gap,
        pairs_checked=len(pairs),
    )
