"""Compressed-sparse-row (CSR) array backend and batched traversal kernels.

The simulation's hot loops are all of the shape *"run one traversal from every
node"*: the depth-``h`` exploration of Compute-Skeleton (Algorithm 6) runs a
hop-limited distance computation from all ``n`` sources, the diameter
algorithm measures a bounded eccentricity per node, and the reference oracles
run Dijkstra per source.  Doing these one Python-level traversal at a time is
what capped experiments at a few hundred nodes.

This module stores the graph once as frozen CSR numpy arrays and provides
*batched multi-source* kernels that advance **all** sources together, one
synchronous round per iteration, with numpy doing the per-round work:

* :func:`bfs_level_matrix` -- level-synchronous BFS from many sources,
* :func:`hop_limited_matrix` -- ``hop_limit`` rounds of synchronous
  Bellman-Ford, i.e. the paper's *literal* ``d_h`` (Section 1.3), and
* :func:`distance_matrix` -- Bellman-Ford iterated to fixpoint, giving exact
  weighted distances (identical to Dijkstra for positive integer weights).

All kernels are exact, deterministic, and bit-identical to the pure-Python
dict-backend implementations: edge weights are positive integers, every
distance is a left-to-right float sum along a single path, and the same
minima are taken, so no floating-point divergence between backends is
possible.  :class:`~repro.graphs.graph.WeightedGraph` freezes a
:class:`CSRAdjacency` on first batched traversal and invalidates it on
``add_edge`` / ``remove_edge``.
"""

from __future__ import annotations

import os
from collections.abc import Sequence

import numpy as np

#: Default per-chunk memory budget in bytes.  Sources are processed ``chunk``
#: at a time so a batched call over all ``n`` sources never allocates more
#: than roughly this much scratch at once; ``REPRO_KERNEL_CHUNK_BYTES``
#: overrides it (larger budgets = fewer, bigger chunks).
_DEFAULT_CHUNK_BYTES = 128 * 1024 * 1024

#: A relaxation round materialises a few same-shaped float64 scratch arrays
#: (candidates, keys, the chunk matrix itself); the budget is divided by this
#: factor so peak allocation stays near the budget rather than several times
#: over it.
_SCRATCH_FACTOR = 4

#: The plane-dispatched kernel surface: every alternate graph plane
#: (:mod:`repro.graphs.compiled`) must provide each of these under the same
#: name with exactly these leading parameter names, or carry an explicit
#: ``name = None`` degradation entry.  Checked statically by RL003 of
#: :mod:`repro.analysis.lint`; renaming a kernel on either plane without
#: updating this registry fails the lint gate.
PLANE_KERNELS = {
    "bfs_level_matrix": ("csr", "sources", "max_hops"),
    "distance_matrix": ("csr", "sources"),
    "hop_limited_matrix": ("csr", "sources", "hop_limit"),
}


class CSRAdjacency:
    """Frozen CSR view of an undirected weighted graph.

    ``indices[indptr[u]:indptr[u+1]]`` are the neighbours of ``u`` (sorted by
    ID for determinism) and ``weights`` the matching edge weights.  Because
    the graph is undirected the same arrays serve as both the out- and
    in-adjacency, which is what the relaxation kernels rely on.
    """

    __slots__ = ("n", "indptr", "indices", "weights", "unit_weights", "sparse_view")

    def __init__(self, n: int, indptr: np.ndarray, indices: np.ndarray, weights: np.ndarray):
        self.n = n
        self.indptr = indptr
        self.indices = indices
        self.weights = weights
        # Lazily built scipy.sparse.csr_matrix over these same arrays, cached
        # by the compiled plane (repro.graphs.compiled); the adjacency is
        # frozen, so the view can never go stale.
        self.sparse_view = None
        # With unit weights d_h degenerates to BFS levels, which the weighted
        # kernels exploit as a fast path.
        self.unit_weights = bool((weights == 1.0).all()) if weights.size else True

    @property
    def directed_edge_count(self) -> int:
        """Number of directed edges stored (``2m`` for an undirected graph)."""
        return int(self.indices.shape[0])


def build_csr(adjacency: Sequence[dict]) -> CSRAdjacency:
    """Freeze a dict-of-dicts adjacency into CSR arrays."""
    n = len(adjacency)
    degrees = np.fromiter((len(adj) for adj in adjacency), dtype=np.int64, count=n)
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(degrees, out=indptr[1:])
    total = int(indptr[-1])
    indices = np.empty(total, dtype=np.int64)
    weights = np.empty(total, dtype=np.float64)
    position = 0
    for adj in adjacency:
        if not adj:
            continue
        neighbours = sorted(adj)
        stop = position + len(neighbours)
        indices[position:stop] = neighbours
        weights[position:stop] = [adj[v] for v in neighbours]
        position = stop
    return CSRAdjacency(n, indptr, indices, weights)


def refresh_weight(csr: CSRAdjacency, u: int, v: int, weight: float) -> CSRAdjacency:
    """A CSR view with one undirected edge's weight replaced in place.

    A weight-only mutation leaves ``indptr``/``indices`` (the frozen
    topology) valid, so the refreshed view *shares* them and only copies and
    patches the weight array -- ``O(m)`` array work instead of the
    Python-loop re-freeze of :func:`build_csr`.  The result is bit-identical
    to re-freezing the mutated adjacency: per-row neighbour order is
    unchanged, so the new weight lands in exactly the slot a rebuild would
    put it in (``unit_weights`` is re-derived from the patched array).
    """
    weights = csr.weights.copy()
    for a, b in ((u, v), (v, u)):
        start, stop = int(csr.indptr[a]), int(csr.indptr[a + 1])
        position = start + int(np.searchsorted(csr.indices[start:stop], b))
        if position >= stop or int(csr.indices[position]) != b:
            raise KeyError(f"edge {{{u}, {v}}} not present in the CSR view")
        weights[position] = float(weight)
    return CSRAdjacency(csr.n, csr.indptr, csr.indices, weights)


def _gather_edges(csr: CSRAdjacency, cols: np.ndarray):
    """Positions into ``csr.indices`` of all edges leaving ``cols``, plus counts.

    This is the standard vectorised multi-slice: for frontier nodes ``cols``
    the concatenation of their CSR rows is ``indices[flat]`` without any
    Python-level loop.
    """
    starts = csr.indptr[cols]
    counts = csr.indptr[cols + 1] - starts
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64), counts
    boundaries = np.cumsum(counts)
    flat = np.arange(total, dtype=np.int64)
    flat += np.repeat(starts - np.concatenate(([0], boundaries[:-1])), counts)
    return flat, counts


def _sorted_unique_keys(keys: np.ndarray, bound: int) -> np.ndarray:
    """Sorted unique values of ``keys`` (all in ``[0, bound)``), radix-fast.

    ``np.unique`` hashes/sorts int64 keys an order of magnitude slower than a
    radix sort; when the key space fits int32 we downcast, ``np.sort`` (radix
    for 32-bit ints), and drop adjacent duplicates.
    """
    if bound <= np.iinfo(np.int32).max:
        ordered = np.sort(keys.astype(np.int32)).astype(np.int64)
    else:
        ordered = np.sort(keys)
    if ordered.size <= 1:
        return ordered
    keep = np.empty(ordered.shape[0], dtype=bool)
    keep[0] = True
    np.not_equal(ordered[1:], ordered[:-1], out=keep[1:])
    return ordered[keep]


def bfs_level_matrix(
    csr: CSRAdjacency, sources: Sequence[int], max_hops: int | None = None
) -> np.ndarray:
    """Hop distances from every source at once (``-1`` marks unreached nodes).

    Level-synchronous BFS over all sources simultaneously: each iteration
    expands every source's frontier in one numpy gather, dedupes the
    ``(source, node)`` pairs, and stamps the new level.  Returns an
    ``(S, n)`` int64 matrix.
    """
    n = csr.n
    src = np.asarray(list(sources), dtype=np.int64)
    count = src.shape[0]
    levels = np.full((count, n), -1, dtype=np.int64)
    source_rows = np.arange(count, dtype=np.int64)
    levels[source_rows, src] = 0
    frontier_rows, frontier_cols = source_rows, src.copy()
    hops = 0
    limit = n if max_hops is None else max_hops
    while frontier_cols.size and hops < limit:
        hops += 1
        flat, counts = _gather_edges(csr, frontier_cols)
        if flat.size == 0:
            break
        rows = np.repeat(frontier_rows, counts)
        cols = csr.indices[flat]
        fresh = levels[rows, cols] < 0
        rows, cols = rows[fresh], cols[fresh]
        if rows.size == 0:
            break
        keys = _sorted_unique_keys(rows * n + cols, count * n)
        rows = keys // n
        cols = keys - rows * n
        levels[rows, cols] = hops
        frontier_rows, frontier_cols = rows, cols
    return levels


def _relax_rounds(
    csr: CSRAdjacency, sources: Sequence[int], max_rounds: int | None
) -> np.ndarray:
    """Shared core of the weighted kernels: synchronous Bellman-Ford rounds.

    After ``k`` iterations ``dist[s, v]`` is the minimum weight of any walk
    from ``s`` to ``v`` using at most ``k`` edges -- exactly ``d_k`` from
    Section 1.3.  With ``max_rounds=None`` iteration continues to the fixpoint,
    which for positive weights is the exact distance ``d``.  Only nodes whose
    value improved in the previous round are relaxed again (their earlier
    relaxations already reached every neighbour), which keeps each round's
    work proportional to the active frontier.
    """
    n = csr.n
    src = np.asarray(list(sources), dtype=np.int64)
    count = src.shape[0]
    dist = np.full((count, n), np.inf)
    source_rows = np.arange(count, dtype=np.int64)
    dist[source_rows, src] = 0.0
    frontier_rows, frontier_cols = source_rows, src.copy()
    rounds = 0
    while frontier_cols.size and (max_rounds is None or rounds < max_rounds):
        rounds += 1
        frontier_values = dist[frontier_rows, frontier_cols]
        flat, counts = _gather_edges(csr, frontier_cols)
        if flat.size == 0:
            break
        rows = np.repeat(frontier_rows, counts)
        cols = csr.indices[flat]
        candidates = np.repeat(frontier_values, counts) + csr.weights[flat]
        # Scatter-min of candidates into dist[rows, cols]: sort by target cell,
        # reduce each group to its minimum, and keep only strict improvements.
        keys = rows * n + cols
        order = np.argsort(keys, kind="stable")
        keys = keys[order]
        candidates = candidates[order]
        group_starts = np.concatenate(([0], np.flatnonzero(np.diff(keys)) + 1))
        group_keys = keys[group_starts]
        group_minima = np.minimum.reduceat(candidates, group_starts)
        rows = group_keys // n
        cols = group_keys - rows * n
        improved = group_minima < dist[rows, cols]
        rows, cols = rows[improved], cols[improved]
        dist[rows, cols] = group_minima[improved]
        frontier_rows, frontier_cols = rows, cols
    return dist


def _levels_as_distances(levels: np.ndarray) -> np.ndarray:
    """BFS levels to float distances (``-1`` becomes ``inf``)."""
    dist = levels.astype(np.float64)
    dist[levels < 0] = np.inf
    return dist


def hop_limited_matrix(csr: CSRAdjacency, sources: Sequence[int], hop_limit: int) -> np.ndarray:
    """``dist[s, v] = d_{hop_limit}(source_s, v)`` (``inf`` outside the ball)."""
    if csr.unit_weights:
        return _levels_as_distances(bfs_level_matrix(csr, sources, hop_limit))
    return _relax_rounds(csr, sources, hop_limit)


def distance_matrix(csr: CSRAdjacency, sources: Sequence[int]) -> np.ndarray:
    """Exact weighted distances from every source (``inf`` when disconnected)."""
    if csr.unit_weights:
        return _levels_as_distances(bfs_level_matrix(csr, sources, None))
    return _relax_rounds(csr, sources, None)


def chunk_byte_budget() -> int:
    """The per-chunk scratch budget in bytes (env-overridable).

    ``REPRO_KERNEL_CHUNK_BYTES`` overrides the default; non-numeric or
    non-positive values fall back to the default rather than erroring, so a
    stray environment variable can never break a run.
    """
    raw = os.environ.get("REPRO_KERNEL_CHUNK_BYTES")
    if raw:
        try:
            value = int(raw)
        except ValueError:
            value = 0
        if value > 0:
            return value
    return _DEFAULT_CHUNK_BYTES


def chunked_sources(
    n: int, sources: Sequence[int], byte_budget: int | None = None
) -> list[Sequence[int]]:
    """Split a source list so each chunk's scratch stays within a byte budget.

    The chunk size is derived from the budget rather than a fixed cell count:
    ``chunk x n`` float64 cells times the scratch factor must fit in
    ``byte_budget`` (default :func:`chunk_byte_budget`), so an n = 4096+
    distance-matrix call peaks near the budget instead of materialising a
    multi-GB dense intermediate.  Chunking never changes results -- chunk
    matrices are concatenated -- only the peak allocation.
    """
    sources = list(sources)
    budget = chunk_byte_budget() if byte_budget is None else byte_budget
    cells = max(1, budget // (8 * _SCRATCH_FACTOR))
    chunk = max(1, cells // max(1, n))
    if len(sources) <= chunk:
        return [sources]
    return [sources[i : i + chunk] for i in range(0, len(sources), chunk)]


def rows_to_dicts(matrix: np.ndarray, cast) -> list[dict]:
    """Convert kernel output rows to the dict-of-reached format of the dict backend."""
    result: list[dict] = []
    for row in matrix:
        if row.dtype == np.int64:
            reached = np.flatnonzero(row >= 0)
        else:
            reached = np.flatnonzero(np.isfinite(row))
        values = row[reached]
        result.append(dict(zip(reached.tolist(), map(cast, values.tolist()), strict=True)))
    return result
