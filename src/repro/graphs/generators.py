"""Graph generators for experiments, examples and tests.

The paper's algorithms are for arbitrary connected graphs; the generators here
cover the workload families used in the benchmarks:

* random connected graphs (the default workload for round-complexity sweeps),
* structured topologies with large hop diameter (paths, cycles, grids, tori)
  where the LOCAL model alone would need ``Θ(D)`` rounds,
* motivating-scenario topologies from the introduction: a wireless/ISP-style
  clustered network and a data-center-style fat-tree-ish network, and
* weight assignment helpers (weights in ``[1, W]`` with ``W`` poly(n)).

The lower-bound gadget families (Figure 1 and Figure 2) live in
:mod:`repro.lower_bounds` because they carry extra metadata (which nodes play
which role in the reduction).
"""

from __future__ import annotations

import math

from repro.graphs.graph import WeightedGraph
from repro.util.rand import RandomSource


def assign_random_weights(
    graph: WeightedGraph, max_weight: int, rng: RandomSource
) -> WeightedGraph:
    """Return a copy of ``graph`` with uniform random weights in ``[1, max_weight]``."""
    if max_weight < 1:
        raise ValueError("max_weight must be at least 1")
    result = WeightedGraph(graph.node_count)
    for u, v, _ in graph.edges():
        result.add_edge(u, v, rng.randint(1, max_weight))
    return result


def path_graph(n: int, weight: int = 1) -> WeightedGraph:
    """A path ``0 - 1 - ... - n-1``; hop diameter ``n - 1``."""
    graph = WeightedGraph(n)
    for i in range(n - 1):
        graph.add_edge(i, i + 1, weight)
    return graph


def cycle_graph(n: int, weight: int = 1) -> WeightedGraph:
    """A cycle on ``n >= 3`` nodes; hop diameter ``⌊n/2⌋``."""
    if n < 3:
        raise ValueError("a cycle needs at least 3 nodes")
    graph = path_graph(n, weight)
    graph.add_edge(n - 1, 0, weight)
    return graph


def star_graph(n: int, weight: int = 1) -> WeightedGraph:
    """A star with centre 0 and ``n - 1`` leaves."""
    graph = WeightedGraph(n)
    for leaf in range(1, n):
        graph.add_edge(0, leaf, weight)
    return graph


def complete_graph(n: int, weight: int = 1) -> WeightedGraph:
    """The complete graph ``K_n``."""
    graph = WeightedGraph(n)
    for u in range(n):
        for v in range(u + 1, n):
            graph.add_edge(u, v, weight)
    return graph


def grid_graph(rows: int, cols: int, weight: int = 1) -> WeightedGraph:
    """A ``rows x cols`` grid; hop diameter ``rows + cols - 2``."""
    if rows < 1 or cols < 1:
        raise ValueError("grid dimensions must be positive")
    graph = WeightedGraph(rows * cols)
    for r in range(rows):
        for c in range(cols):
            node = r * cols + c
            if c + 1 < cols:
                graph.add_edge(node, node + 1, weight)
            if r + 1 < rows:
                graph.add_edge(node, node + cols, weight)
    return graph


def torus_graph(rows: int, cols: int, weight: int = 1) -> WeightedGraph:
    """A ``rows x cols`` torus (grid with wraparound edges)."""
    if rows < 3 or cols < 3:
        raise ValueError("torus dimensions must be at least 3")
    graph = WeightedGraph(rows * cols)
    for r in range(rows):
        for c in range(cols):
            node = r * cols + c
            right = r * cols + (c + 1) % cols
            down = ((r + 1) % rows) * cols + c
            if not graph.has_edge(node, right):
                graph.add_edge(node, right, weight)
            if not graph.has_edge(node, down):
                graph.add_edge(node, down, weight)
    return graph


def random_tree(n: int, rng: RandomSource, weight: int = 1) -> WeightedGraph:
    """A uniformly-ish random tree: node ``i`` attaches to a random earlier node."""
    graph = WeightedGraph(n)
    for node in range(1, n):
        parent = rng.randrange(node)
        graph.add_edge(node, parent, weight)
    return graph


def random_connected_graph(
    n: int,
    average_degree: float,
    rng: RandomSource,
    max_weight: int = 1,
) -> WeightedGraph:
    """A connected Erdős–Rényi-style graph with roughly the given average degree.

    A random spanning tree guarantees connectivity; additional edges are added
    uniformly at random until the target edge count ``n * average_degree / 2``
    is reached.  Weights are uniform in ``[1, max_weight]``.
    """
    if n < 2:
        raise ValueError("need at least 2 nodes")
    if average_degree < 1:
        raise ValueError("average_degree must be at least 1 to stay connected")
    graph = random_tree(n, rng)
    target_edges = max(n - 1, int(round(n * average_degree / 2.0)))
    max_possible = n * (n - 1) // 2
    target_edges = min(target_edges, max_possible)
    attempts = 0
    attempt_limit = 50 * target_edges + 100
    while graph.edge_count < target_edges and attempts < attempt_limit:
        attempts += 1
        u = rng.randrange(n)
        v = rng.randrange(n)
        if u != v and not graph.has_edge(u, v):
            graph.add_edge(u, v, 1)
    if max_weight > 1:
        graph = assign_random_weights(graph, max_weight, rng)
    return graph


def random_geometric_like_graph(
    n: int,
    neighbourhood: int,
    rng: RandomSource,
    extra_edge_probability: float = 0.05,
    max_weight: int = 1,
) -> WeightedGraph:
    """A "wireless mesh"-style graph: a ring of nodes with links to nearby IDs.

    Models the introduction's mobile-device scenario: each device connects to
    the ``neighbourhood`` devices closest to it (locality), plus a few random
    long links.  The hop diameter grows like ``n / neighbourhood``, so the
    LOCAL model alone is slow and the global mode genuinely helps.
    """
    if neighbourhood < 1:
        raise ValueError("neighbourhood must be positive")
    graph = WeightedGraph(n)
    for u in range(n):
        for offset in range(1, neighbourhood + 1):
            v = (u + offset) % n
            if u != v and not graph.has_edge(u, v):
                graph.add_edge(u, v, 1)
    extra = int(extra_edge_probability * n)
    for _ in range(extra):
        u = rng.randrange(n)
        v = rng.randrange(n)
        if u != v and not graph.has_edge(u, v):
            graph.add_edge(u, v, 1)
    if max_weight > 1:
        graph = assign_random_weights(graph, max_weight, rng)
    return graph


def clustered_isp_graph(
    cluster_count: int,
    cluster_size: int,
    rng: RandomSource,
    intra_degree: float = 4.0,
    inter_edges_per_cluster: int = 2,
    max_weight: int = 1,
) -> WeightedGraph:
    """An ISP/enterprise-style topology: dense sites joined by sparse backbone links.

    This mirrors the introduction's "company combines its LAN with the
    Internet" scenario: local communication is plentiful inside a site, global
    communication crosses sites.  The backbone is a ring over the clusters plus
    a few random chords, so the hop diameter scales with ``cluster_count``.
    """
    if cluster_count < 2 or cluster_size < 2:
        raise ValueError("need at least 2 clusters of at least 2 nodes")
    n = cluster_count * cluster_size
    graph = WeightedGraph(n)

    def cluster_nodes(cluster: int) -> list[int]:
        base = cluster * cluster_size
        return list(range(base, base + cluster_size))

    # Dense intra-cluster connectivity: a cycle plus random chords.
    for cluster in range(cluster_count):
        nodes = cluster_nodes(cluster)
        for index in range(len(nodes)):
            graph.add_edge(nodes[index], nodes[(index + 1) % len(nodes)], 1)
        extra_edges = int(cluster_size * max(0.0, intra_degree - 2.0) / 2.0)
        for _ in range(extra_edges):
            u = rng.choice(nodes)
            v = rng.choice(nodes)
            if u != v and not graph.has_edge(u, v):
                graph.add_edge(u, v, 1)
    # Sparse inter-cluster backbone: ring over clusters plus random chords.
    for cluster in range(cluster_count):
        neighbour = (cluster + 1) % cluster_count
        for _ in range(inter_edges_per_cluster):
            u = rng.choice(cluster_nodes(cluster))
            v = rng.choice(cluster_nodes(neighbour))
            if not graph.has_edge(u, v):
                graph.add_edge(u, v, 1)
    if max_weight > 1:
        graph = assign_random_weights(graph, max_weight, rng)
    return graph


def datacenter_pod_graph(
    pod_count: int,
    racks_per_pod: int,
    servers_per_rack: int,
    rng: RandomSource | None = None,
) -> WeightedGraph:
    """A simplified data-center topology (pods of racks of servers).

    Models the "augment the wired data-center network with optical/wireless
    links" motivation: servers connect to their top-of-rack switch, racks to a
    pod aggregation switch, pods to a core ring.  Node layout::

        core switches        : one per pod
        aggregation switches : one per (pod)
        rack switches        : one per (pod, rack)
        servers              : servers_per_rack per rack

    The returned graph is connected and unweighted.
    """
    if pod_count < 2 or racks_per_pod < 1 or servers_per_rack < 1:
        raise ValueError("invalid data-center dimensions")
    core = list(range(pod_count))
    agg_base = pod_count
    rack_base = agg_base + pod_count
    server_base = rack_base + pod_count * racks_per_pod
    n = server_base + pod_count * racks_per_pod * servers_per_rack
    graph = WeightedGraph(n)
    # Core ring connecting pods.
    for pod in range(pod_count):
        graph.add_edge(core[pod], core[(pod + 1) % pod_count], 1)
    for pod in range(pod_count):
        agg = agg_base + pod
        graph.add_edge(core[pod], agg, 1)
        for rack in range(racks_per_pod):
            rack_switch = rack_base + pod * racks_per_pod + rack
            graph.add_edge(agg, rack_switch, 1)
            for server in range(servers_per_rack):
                server_node = (
                    server_base
                    + (pod * racks_per_pod + rack) * servers_per_rack
                    + server
                )
                graph.add_edge(rack_switch, server_node, 1)
    return graph


def barbell_graph(clique_size: int, path_length: int) -> WeightedGraph:
    """Two cliques of ``clique_size`` nodes joined by a path of ``path_length`` edges.

    A standard "large diameter, locally dense" stress graph: the hop diameter is
    ``path_length + 2`` while most pairs of nodes are at distance 1.
    """
    if clique_size < 2 or path_length < 1:
        raise ValueError("need clique_size >= 2 and path_length >= 1")
    n = 2 * clique_size + max(0, path_length - 1)
    graph = WeightedGraph(n)
    left = list(range(clique_size))
    right = list(range(clique_size, 2 * clique_size))
    middle = list(range(2 * clique_size, n))
    for nodes in (left, right):
        for i, u in enumerate(nodes):
            for v in nodes[i + 1 :]:
                graph.add_edge(u, v, 1)
    chain = [left[-1]] + middle + [right[0]]
    for a, b in zip(chain, chain[1:], strict=False):
        graph.add_edge(a, b, 1)
    return graph


def caterpillar_graph(spine_length: int, legs_per_node: int) -> WeightedGraph:
    """A path ("spine") where every spine node has ``legs_per_node`` leaf nodes.

    Useful for k-SSP experiments: sources can be placed on leaves so that the
    hop diameter stays ``Θ(spine_length)`` while ``k`` grows with the leg count.
    """
    if spine_length < 2 or legs_per_node < 0:
        raise ValueError("need spine_length >= 2 and legs_per_node >= 0")
    n = spine_length * (1 + legs_per_node)
    graph = WeightedGraph(n)
    for i in range(spine_length - 1):
        graph.add_edge(i, i + 1, 1)
    next_leaf = spine_length
    for spine_node in range(spine_length):
        for _ in range(legs_per_node):
            graph.add_edge(spine_node, next_leaf, 1)
            next_leaf += 1
    return graph


def power_law_graph(
    n: int,
    rng: RandomSource,
    attachment: int = 2,
    max_weight: int = 1,
) -> WeightedGraph:
    """A preferential-attachment ("scale-free") graph à la Barabási–Albert.

    Models internet-like topologies: every new node attaches to ``attachment``
    existing nodes chosen proportionally to their current degree, giving a
    power-law degree distribution, a few high-degree hubs, and a small hop
    diameter.  For the HYBRID algorithms this is the regime where the *global*
    mode's per-node capacity (not distance) is the bottleneck: hubs see a
    disproportionate share of token-routing traffic.  Connected by
    construction.
    """
    if n < 2:
        raise ValueError("need at least 2 nodes")
    if attachment < 1:
        raise ValueError("attachment must be at least 1")
    graph = WeightedGraph(n)
    # Endpoint multiset: every edge contributes both endpoints, so sampling a
    # uniform element is degree-proportional sampling.
    endpoints: list[int] = [0]
    for node in range(1, n):
        chosen = set()
        wanted = min(attachment, node)
        while len(chosen) < wanted:
            chosen.add(endpoints[rng.randrange(len(endpoints))])
        # Sorted: the iteration order feeds the endpoint multiset and hence
        # every later degree-proportional draw, so it must not depend on set
        # internals (RL002).  tests/test_generators.py pins the result.
        for target in sorted(chosen):
            graph.add_edge(node, target, 1)
            endpoints.append(node)
            endpoints.append(target)
    if max_weight > 1:
        graph = assign_random_weights(graph, max_weight, rng)
    return graph


def grid_with_highways_graph(
    rows: int,
    cols: int,
    highway_count: int,
    rng: RandomSource,
    street_weight: int = 4,
    highway_weight: int = 1,
) -> WeightedGraph:
    """A road-network-style graph: a weighted grid plus a few long "highways".

    Models the introduction's street-level mesh: local links ("streets") form
    a ``rows x cols`` grid with weight ``street_weight``; ``highway_count``
    random long-range edges with the cheaper weight ``highway_weight`` connect
    distant intersections.  The hop diameter stays ``Θ(rows + cols)`` while
    shortest *weighted* paths want to detour through highways, so hop-limited
    distances ``d_h`` genuinely differ from hop counts -- the regime where the
    skeleton machinery earns its keep.
    """
    if highway_count < 0:
        raise ValueError("highway_count must be non-negative")
    graph = grid_graph(rows, cols, weight=street_weight)
    n = rows * cols
    added = 0
    attempts = 0
    while added < highway_count and attempts < 50 * (highway_count + 1):
        attempts += 1
        u = rng.randrange(n)
        v = rng.randrange(n)
        manhattan = abs(u // cols - v // cols) + abs(u % cols - v % cols)
        if u != v and manhattan >= (rows + cols) // 4 and not graph.has_edge(u, v):
            graph.add_edge(u, v, highway_weight)
            added += 1
    return graph


def hierarchical_isp_graph(
    core_count: int,
    regionals_per_core: int,
    leaves_per_regional: int,
    rng: RandomSource,
    cross_links: int = 2,
    max_weight: int = 1,
) -> WeightedGraph:
    """A three-tier ISP topology: core ring, regional rings, access leaves.

    A deeper version of :func:`clustered_isp_graph` modelling a national
    carrier: ``core_count`` backbone routers in a ring, each serving a ring of
    ``regionals_per_core`` regional routers, each of which serves
    ``leaves_per_regional`` access nodes, plus a few random regional-to-
    regional cross links.  Node layout: cores first, then regionals grouped by
    core, then leaves grouped by regional.  Connected by construction; the hop
    diameter scales with the core ring while most nodes are leaves, matching
    the "LAN + Internet" motivation of the paper's introduction.
    """
    if core_count < 2 or regionals_per_core < 1 or leaves_per_regional < 0:
        raise ValueError("invalid hierarchy dimensions")
    regional_base = core_count
    regional_total = core_count * regionals_per_core
    leaf_base = regional_base + regional_total
    n = leaf_base + regional_total * leaves_per_regional
    graph = WeightedGraph(n)
    for core in range(core_count):
        if core_count > 1 and not graph.has_edge(core, (core + 1) % core_count):
            graph.add_edge(core, (core + 1) % core_count, 1)
    for core in range(core_count):
        regionals = [
            regional_base + core * regionals_per_core + i for i in range(regionals_per_core)
        ]
        for position, regional in enumerate(regionals):
            graph.add_edge(core, regional, 1)
            if len(regionals) > 2:
                neighbour = regionals[(position + 1) % len(regionals)]
                if not graph.has_edge(regional, neighbour):
                    graph.add_edge(regional, neighbour, 1)
            regional_index = regional - regional_base
            for leaf in range(leaves_per_regional):
                graph.add_edge(regional, leaf_base + regional_index * leaves_per_regional + leaf, 1)
    for _ in range(cross_links):
        u = regional_base + rng.randrange(regional_total)
        v = regional_base + rng.randrange(regional_total)
        if u != v and not graph.has_edge(u, v):
            graph.add_edge(u, v, 1)
    if max_weight > 1:
        graph = assign_random_weights(graph, max_weight, rng)
    return graph


def connected_workload(
    n: int,
    rng: RandomSource,
    weighted: bool = False,
    max_weight: int = 16,
    average_degree: float = 4.0,
) -> WeightedGraph:
    """The default benchmark workload: a connected random graph of ``n`` nodes.

    ``max_weight`` defaults to a small polynomial-in-n-friendly value so both
    the weighted and unweighted branches of the algorithms get exercised.
    """
    return random_connected_graph(
        n,
        average_degree=average_degree,
        rng=rng,
        max_weight=max_weight if weighted else 1,
    )


def suggested_hop_diameter(graph: WeightedGraph) -> int:
    """Cheap upper estimate of the hop diameter (2x eccentricity of node 0).

    Used by generators/tests that only need the order of magnitude of ``D``
    without paying for an exact all-pairs computation.
    """
    ecc = graph.hop_eccentricity(0)
    if ecc == math.inf:
        raise ValueError("graph is disconnected")
    return int(2 * ecc)
