"""repro: a reproduction of *Computing Shortest Paths and Diameter in the Hybrid
Network Model* (Kuhn & Schneider, PODC 2020).

The package simulates the HYBRID communication model (unbounded local edges +
a capacity-limited global network) and implements the paper's algorithms on
top of it:

* token routing (Theorem 2.2),
* exact APSP in ``Õ(√n)`` rounds (Theorem 1.1),
* the CLIQUE-simulation framework for k-SSP / SSSP (Theorems 4.1, 1.2, 1.3),
* diameter approximation (Theorems 5.1, 1.4), and
* the lower-bound constructions of Sections 6 and 7 (Theorems 1.5, 1.6).

Quick start (the session API shares the ``Õ(√n)`` preprocessing between
queries; the one-shot functions like :func:`apsp_exact` remain available)::

    from repro import HybridSession, ModelConfig, generators
    from repro.util import RandomSource

    graph = generators.connected_workload(120, RandomSource(1), weighted=True)
    session = HybridSession(graph, ModelConfig(rng_seed=1))
    apsp = session.apsp()          # pays the preprocessing
    sssp = session.sssp(0)         # warm: amortized cost only
    print(apsp.distance(0, 5), session.last_query.amortized_rounds)
"""

from repro.baselines import (
    apsp_broadcast_baseline,
    local_only_diameter,
    local_only_shortest_paths,
    ncc_only_shortest_paths,
    route_tokens_by_broadcast,
)
from repro.clique import (
    BroadcastBellmanFordSSSP,
    BroadcastKSourceBellmanFord,
    CliqueAlgorithmSpec,
    CliqueNetwork,
    EccentricityDiameter,
    GatherDiameter,
    GatherShortestPaths,
)
from repro.core import (
    APSPResult,
    DiameterResult,
    HelperSets,
    RoutingToken,
    ShortestPathsResult,
    Skeleton,
    SkeletonContext,
    SSSPResult,
    TokenRouter,
    TokenRoutingResult,
    approximate_diameter,
    apsp_exact,
    compute_helper_sets,
    compute_representatives,
    compute_skeleton,
    make_tokens,
    prepare_skeleton_context,
    route_tokens,
    shortest_paths_via_clique,
    sssp_exact,
)
from repro.graphs import WeightedGraph, generators, reference
from repro.hybrid import (
    FaultModel,
    FaultToleranceExceededError,
    HybridNetwork,
    ModelConfig,
    RoundMetrics,
)
from repro.localnet import disseminate_tokens
from repro.session import HybridSession, QueryRecord
from repro.util.rand import RandomSource

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # model
    "HybridNetwork",
    "HybridSession",
    "QueryRecord",
    "ModelConfig",
    "RoundMetrics",
    "FaultModel",
    "FaultToleranceExceededError",
    "WeightedGraph",
    "RandomSource",
    "generators",
    "reference",
    # core algorithms
    "apsp_exact",
    "APSPResult",
    "sssp_exact",
    "SSSPResult",
    "shortest_paths_via_clique",
    "ShortestPathsResult",
    "approximate_diameter",
    "DiameterResult",
    "route_tokens",
    "make_tokens",
    "RoutingToken",
    "TokenRouter",
    "TokenRoutingResult",
    "compute_helper_sets",
    "HelperSets",
    "compute_skeleton",
    "Skeleton",
    "SkeletonContext",
    "prepare_skeleton_context",
    "compute_representatives",
    "disseminate_tokens",
    # clique substrate
    "CliqueNetwork",
    "CliqueAlgorithmSpec",
    "GatherShortestPaths",
    "BroadcastKSourceBellmanFord",
    "BroadcastBellmanFordSSSP",
    "GatherDiameter",
    "EccentricityDiameter",
    # baselines
    "apsp_broadcast_baseline",
    "local_only_shortest_paths",
    "local_only_diameter",
    "ncc_only_shortest_paths",
    "route_tokens_by_broadcast",
]
